"""Tests for range-based precision/recall."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation import range_f1, range_precision_recall


class TestBasics:
    def test_perfect_match(self):
        labels = np.array([0, 1, 1, 0, 1, 0])
        score = range_precision_recall(labels, labels)
        assert score.precision == 1.0
        assert score.recall == 1.0
        assert score.f1 == 1.0

    def test_no_predictions(self):
        labels = np.array([0, 1, 1, 0])
        score = range_precision_recall(np.zeros(4, dtype=int), labels)
        assert score.precision == 0.0
        assert score.recall == 0.0
        assert score.f1 == 0.0

    def test_no_anomalies(self):
        predictions = np.array([1, 0, 0, 1])
        score = range_precision_recall(predictions, np.zeros(4, dtype=int))
        assert score.recall == 0.0
        assert score.precision == 0.0

    def test_partial_overlap(self):
        labels = np.zeros(10, dtype=int)
        labels[2:8] = 1  # one range of length 6
        predictions = np.zeros(10, dtype=int)
        predictions[5:8] = 1  # covers half
        score = range_precision_recall(predictions, labels, alpha=0.0)
        assert score.recall == pytest.approx(0.5)
        assert score.precision == pytest.approx(1.0)

    def test_alpha_existence_reward(self):
        labels = np.zeros(10, dtype=int)
        labels[2:8] = 1
        predictions = np.zeros(10, dtype=int)
        predictions[2] = 1  # one touched point
        pure_overlap = range_precision_recall(predictions, labels, alpha=0.0)
        pure_existence = range_precision_recall(predictions, labels, alpha=1.0)
        assert pure_existence.recall == 1.0
        assert pure_overlap.recall == pytest.approx(1 / 6)

    def test_false_positive_range_hurts_precision(self):
        labels = np.zeros(10, dtype=int)
        labels[2:4] = 1
        predictions = np.zeros(10, dtype=int)
        predictions[2:4] = 1
        predictions[7:9] = 1  # spurious range
        score = range_precision_recall(predictions, labels)
        assert score.precision == pytest.approx(0.5)
        assert score.recall == 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            range_precision_recall(np.zeros(3), np.zeros(3), alpha=1.5)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            range_precision_recall(np.zeros(3), np.zeros(4))


binary_pairs = st.integers(8, 60).flatmap(
    lambda n: st.tuples(
        arrays(np.int8, n, elements=st.integers(0, 1)),
        arrays(np.int8, n, elements=st.integers(0, 1)),
    )
)


@given(binary_pairs, st.floats(0, 1))
@settings(max_examples=60, deadline=None)
def test_range_metrics_bounded(pair, alpha):
    predictions, labels = pair
    score = range_precision_recall(predictions, labels, alpha)
    assert 0.0 <= score.precision <= 1.0
    assert 0.0 <= score.recall <= 1.0
    assert 0.0 <= score.f1 <= 1.0
    assert range_f1(predictions, labels, alpha) == score.f1


@given(binary_pairs)
@settings(max_examples=40, deadline=None)
def test_perfect_prediction_maximal(pair):
    _, labels = pair
    if labels.sum() == 0:
        return
    score = range_precision_recall(labels, labels)
    assert score.f1 == 1.0
