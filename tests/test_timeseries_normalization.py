"""Tests for scalers and score normalisation."""

import numpy as np
import pytest

from repro.timeseries import MinMaxScaler, StandardScaler, minmax_unit, zscore


class TestStandardScaler:
    def test_fit_transform_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 3.0, (4, 200))
        scaled = StandardScaler.fit_transform(values)
        np.testing.assert_allclose(scaled.mean(axis=1), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=1), 1.0, atol=1e-10)

    def test_constant_row_safe(self):
        values = np.vstack([np.ones(10), np.arange(10.0)])
        scaled = StandardScaler.fit_transform(values)
        assert np.isfinite(scaled).all()
        np.testing.assert_allclose(scaled[0], 0.0)

    def test_transform_uses_fitted_stats(self):
        train = np.array([[0.0, 2.0]])
        scaler = StandardScaler.fit(train)
        np.testing.assert_allclose(scaler.transform(np.array([[4.0]])), [[3.0]])

    def test_sensor_count_mismatch(self):
        scaler = StandardScaler.fit(np.zeros((2, 5)))
        with pytest.raises(ValueError):
            scaler.transform(np.zeros((3, 5)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            StandardScaler.fit(np.zeros(5))


class TestMinMaxScaler:
    def test_range(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(-7, 3, (3, 50))
        scaled = MinMaxScaler.fit_transform(values)
        np.testing.assert_allclose(scaled.min(axis=1), 0.0, atol=1e-12)
        np.testing.assert_allclose(scaled.max(axis=1), 1.0, atol=1e-12)

    def test_constant_row_safe(self):
        scaled = MinMaxScaler.fit_transform(np.ones((1, 5)))
        assert np.isfinite(scaled).all()

    def test_out_of_range_test_data(self):
        scaler = MinMaxScaler.fit(np.array([[0.0, 10.0]]))
        result = scaler.transform(np.array([[20.0]]))
        assert result[0, 0] == pytest.approx(2.0)


class TestZscore:
    def test_basic(self):
        z = zscore(np.array([1.0, 2.0, 3.0]))
        assert z.mean() == pytest.approx(0.0)
        assert z.std() == pytest.approx(1.0)

    def test_constant(self):
        np.testing.assert_array_equal(zscore(np.full(4, 7.0)), np.zeros(4))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            zscore(np.zeros((2, 2)))


class TestMinMaxUnit:
    def test_maps_to_unit_interval(self):
        scores = minmax_unit(np.array([-5.0, 0.0, 5.0]))
        np.testing.assert_allclose(scores, [0.0, 0.5, 1.0])

    def test_constant_maps_to_zero(self):
        np.testing.assert_array_equal(minmax_unit(np.full(3, 9.0)), np.zeros(3))

    def test_preserves_order(self):
        rng = np.random.default_rng(2)
        raw = rng.standard_normal(30)
        scaled = minmax_unit(raw)
        np.testing.assert_array_equal(np.argsort(raw), np.argsort(scaled))
