"""Tests for co-appearance mining (paper Definitions 4-6)."""

import numpy as np
import pytest

from repro.core import CoAppearanceTracker, coappearance_counts


def brute_force_counts(previous, labels):
    """Direct O(n^2) evaluation of Definition 5."""
    n = len(labels)
    counts = np.zeros(n, dtype=int)
    for v in range(n):
        for u in range(n):
            if u == v:
                continue
            if previous[u] == previous[v] and labels[u] == labels[v]:
                counts[v] += 1
    return counts


class TestCoappearanceCounts:
    def test_identical_partitions(self):
        labels = np.array([0, 0, 1, 1, 1])
        counts = coappearance_counts(labels, labels)
        np.testing.assert_array_equal(counts, [1, 1, 2, 2, 2])

    def test_one_vertex_moves(self):
        previous = np.array([0, 0, 0, 1, 1])
        current = np.array([0, 0, 1, 1, 1])
        counts = coappearance_counts(previous, current)
        # Vertex 2 left community 0: co-appears with nobody.
        assert counts[2] == 0
        # Vertices 0, 1 still share both rounds.
        assert counts[0] == 1 and counts[1] == 1
        # Vertices 3, 4 unaffected.
        assert counts[3] == 1 and counts[4] == 1

    def test_label_renaming_invariant(self):
        previous = np.array([0, 0, 1, 1])
        current_a = np.array([0, 0, 1, 1])
        current_b = np.array([5, 5, 2, 2])  # same partition, new names
        np.testing.assert_array_equal(
            coappearance_counts(previous, current_a),
            coappearance_counts(previous, current_b),
        )

    def test_matches_brute_force_random(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(2, 30))
            previous = rng.integers(0, 4, n)
            current = rng.integers(0, 4, n)
            np.testing.assert_array_equal(
                coappearance_counts(previous, current),
                brute_force_counts(previous, current),
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            coappearance_counts(np.zeros(3, dtype=int), np.zeros(4, dtype=int))


class TestTracker:
    def test_first_round_returns_none(self):
        tracker = CoAppearanceTracker(4)
        assert tracker.update(np.array([0, 0, 1, 1])) is None
        assert tracker.rounds_seen == 0

    def test_running_rc_definition(self):
        """RC must equal (1 / (r (n-1))) * sum of S_i (Definition 6)."""
        tracker = CoAppearanceTracker(4, mode="running")
        partitions = [
            np.array([0, 0, 1, 1]),
            np.array([0, 0, 1, 1]),
            np.array([0, 1, 1, 0]),
            np.array([0, 0, 0, 1]),
        ]
        tracker.update(partitions[0])
        sums = np.zeros(4)
        for r, labels in enumerate(partitions[1:], start=1):
            s_r, rc = tracker.update(labels)
            sums += s_r
            np.testing.assert_allclose(rc, sums / (r * 3))

    def test_stable_partition_rc_level(self):
        tracker = CoAppearanceTracker(6, mode="running")
        labels = np.array([0, 0, 0, 1, 1, 1])
        tracker.update(labels)
        for _ in range(5):
            _, rc = tracker.update(labels)
        np.testing.assert_allclose(rc, 2 / 5)

    def test_window_mode_forgets(self):
        tracker = CoAppearanceTracker(4, mode="window", window=2)
        stable = np.array([0, 0, 1, 1])
        tracker.update(stable)
        tracker.update(stable)
        # Break vertex 0 away for two rounds: windowed RC drops to 0 for it.
        broken = np.array([2, 0, 1, 1])
        tracker.update(broken)
        _, rc = tracker.update(broken)
        assert rc[0] == 0.0
        # Vertex 1 lost its partner 0 but keeps itself: S = 0 too.
        assert rc[2] > 0

    def test_decay_mode_between_running_and_window(self):
        stable = np.array([0, 0, 1, 1])
        broken = np.array([2, 0, 1, 1])
        rcs = {}
        for mode, kwargs in [
            ("running", {}),
            ("decay", {"decay": 0.5}),
            ("window", {"window": 1}),
        ]:
            tracker = CoAppearanceTracker(4, mode=mode, **kwargs)
            tracker.update(stable)
            for _ in range(5):
                tracker.update(stable)
            _, rc = tracker.update(broken)
            rcs[mode] = rc[0]
        assert rcs["window"] <= rcs["decay"] <= rcs["running"]

    def test_reset(self):
        tracker = CoAppearanceTracker(4)
        tracker.update(np.array([0, 0, 1, 1]))
        tracker.update(np.array([0, 0, 1, 1]))
        tracker.reset()
        assert tracker.rounds_seen == 0
        assert tracker.last_rc is None
        assert tracker.update(np.array([0, 0, 1, 1])) is None

    def test_last_rc_exposed(self):
        tracker = CoAppearanceTracker(4)
        labels = np.array([0, 0, 1, 1])
        tracker.update(labels)
        _, rc = tracker.update(labels)
        np.testing.assert_array_equal(tracker.last_rc, rc)

    def test_wrong_label_shape(self):
        tracker = CoAppearanceTracker(4)
        with pytest.raises(ValueError):
            tracker.update(np.array([0, 1]))

    def test_needs_two_sensors(self):
        with pytest.raises(ValueError):
            CoAppearanceTracker(1)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            CoAppearanceTracker(4, mode="bogus")
