"""Public-API contract tests: exports resolve, docstrings exist."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.graph",
    "repro.timeseries",
    "repro.neural",
    "repro.clustering",
    "repro.baselines",
    "repro.evaluation",
    "repro.datasets",
    "repro.bench",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} must define __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_items_documented(package_name):
    package = importlib.import_module(package_name)
    for name in package.__all__:
        item = getattr(package, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            assert inspect.getdoc(item), f"{package_name}.{name} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_names():
    import repro

    for name in ("CAD", "CADConfig", "StreamingCAD", "detect_anomalies",
                 "MultivariateTimeSeries", "WindowSpec"):
        assert name in repro.__all__
