"""Extra edge-case tests: reporting emit, dataset IO failure modes, t0 continuity."""

import numpy as np
import pytest

from repro.bench.reporting import emit, format_table
from repro.datasets import (
    NetworkConfig,
    SensorNetworkSimulator,
    load_dataset,
    save_dataset,
)
from repro.datasets.io import load_dataset_file


class TestEmit:
    def test_emit_writes_and_prints(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        emit("demo", format_table(["a"], [["1"]], title="T"))
        out = capsys.readouterr().out
        assert "T" in out
        assert (tmp_path / "results" / "demo.txt").read_text().startswith("T")


class TestDatasetIOFailures:
    def test_unknown_name_rejected_on_load(self, tmp_path):
        dataset = load_dataset("smd-sim-02")
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        # Corrupt the stored name: the loader must refuse mystery data.
        import json

        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["name"] = np.array("not-a-dataset")
        np.savez_compressed(path, **payload)
        with pytest.raises(KeyError):
            load_dataset_file(path)

    def test_load_dataset_caches(self):
        a = load_dataset("smd-sim-02")
        b = load_dataset("smd-sim-02")
        assert a is b


class TestGeneratorContinuity:
    def test_t0_keeps_seasonal_phase(self):
        """History and test generated back-to-back align at the seam.

        The deterministic seasonal component must continue through t0; only
        the random parts (AR noise) differ, so correlation across the seam
        between a sensor and itself shifted by one full period stays high.
        """
        simulator = SensorNetworkSimulator(
            NetworkConfig(n_sensors=6, n_communities=2, noise_scale=0.01, seed=3)
        )
        history = simulator.generate(600)
        test = simulator.generate(600, t0=600)
        # Compare the deterministic expectation: regenerate the full series
        # from an identical simulator and check the seasonal phase matches
        # the two-segment version closely at the seam.
        reference = SensorNetworkSimulator(
            NetworkConfig(n_sensors=6, n_communities=2, noise_scale=0.01, seed=3)
        ).generate(1200)
        seam_two_part = np.hstack(
            [history.series.values[:, -50:], test.series.values[:, :50]]
        )
        seam_reference = reference.series.values[:, 550:650]
        # AR noise streams diverge, but the shared sinusoidal drivers keep
        # the two versions strongly correlated around the seam.
        for row_a, row_b in zip(seam_two_part, seam_reference):
            corr = np.corrcoef(row_a, row_b)[0, 1]
            assert corr > 0.2, f"seam correlation too low: {corr:.2f}"
