"""Tests for PA and DPA — including the paper's Figure 3 example."""

import numpy as np
import pytest

from repro.evaluation import (
    adjust_predictions,
    detection_delays,
    f1_dpa,
    f1_pa,
    f1_score,
    segment_recall,
)


@pytest.fixture
def figure3():
    """The paper's Figure 3: ground truth and method M1.

    Ground truth has two anomalies: t3-t5 and t7-t9 (1-indexed); M1
    predicts t3 and t10.  With 0-indexing over 12 points:
    gt[2:5] = 1, gt[6:9] = 1; m1 hits points 2 and 9.
    """
    gt = np.zeros(12, dtype=int)
    gt[2:5] = 1
    gt[6:9] = 1
    m1 = np.zeros(12, dtype=int)
    m1[2] = 1
    m1[9] = 1
    return gt, m1


class TestFigure3Numbers:
    def test_raw_f1_is_low(self, figure3):
        gt, m1 = figure3
        # 1 TP (t3), 1 FP (t10), 5 FN -> F1 = 2/8 = 25%... the paper's M1
        # also hits inside the second anomaly; emulate its 2 TPs:
        m1 = m1.copy()
        m1[9] = 0
        m1[8] = 1  # last point of anomaly 2
        assert f1_score(m1, gt) == pytest.approx(2 * 2 / (2 * 2 + 0 + 4))

    def test_pa_adjusts_everything(self, figure3):
        gt, m1 = figure3
        m1 = m1.copy()
        m1[9] = 0
        m1[8] = 1
        assert f1_pa(m1, gt) == pytest.approx(1.0)

    def test_dpa_keeps_leading_misses(self, figure3):
        gt, m1 = figure3
        m1 = m1.copy()
        m1[9] = 0
        m1[8] = 1
        # Anomaly 1 detected at its first point -> fully adjusted (3 TP).
        # Anomaly 2 detected at its last point -> only 1 TP, 2 FN remain.
        # F1 = 2*4 / (2*4 + 0 + 2) = 0.8
        assert f1_dpa(m1, gt) == pytest.approx(0.8)

    def test_dpa_never_exceeds_pa(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            gt = (rng.random(50) < 0.3).astype(int)
            predictions = (rng.random(50) < 0.2).astype(int)
            assert f1_dpa(predictions, gt) <= f1_pa(predictions, gt) + 1e-12


class TestAdjustPredictions:
    def test_none_mode_copies(self):
        predictions = np.array([1, 0, 1])
        labels = np.array([1, 1, 1])
        adjusted = adjust_predictions(predictions, labels, "none")
        np.testing.assert_array_equal(adjusted, predictions)
        adjusted[0] = 0
        assert predictions[0] == 1

    def test_pa_fills_whole_segment(self):
        labels = np.array([0, 1, 1, 1, 0])
        predictions = np.array([0, 0, 1, 0, 0])
        np.testing.assert_array_equal(
            adjust_predictions(predictions, labels, "pa"), [0, 1, 1, 1, 0]
        )

    def test_dpa_fills_from_first_hit(self):
        labels = np.array([0, 1, 1, 1, 0])
        predictions = np.array([0, 0, 1, 0, 0])
        np.testing.assert_array_equal(
            adjust_predictions(predictions, labels, "dpa"), [0, 0, 1, 1, 0]
        )

    def test_missed_segment_untouched(self):
        labels = np.array([1, 1, 0])
        predictions = np.array([0, 0, 1])
        np.testing.assert_array_equal(
            adjust_predictions(predictions, labels, "pa"), [0, 0, 1]
        )

    def test_fp_outside_segments_kept(self):
        labels = np.array([0, 1, 0])
        predictions = np.array([1, 1, 1])
        adjusted = adjust_predictions(predictions, labels, "dpa")
        np.testing.assert_array_equal(adjusted, [1, 1, 1])

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            adjust_predictions(np.zeros(3), np.zeros(3), "bogus")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            adjust_predictions(np.zeros(3), np.zeros(4))


class TestDelays:
    def test_delays(self):
        labels = np.array([0, 1, 1, 1, 0, 1, 1, 0])
        predictions = np.array([0, 0, 1, 0, 0, 0, 0, 0])
        assert detection_delays(predictions, labels) == [1, None]

    def test_zero_delay(self):
        labels = np.array([1, 1, 0])
        predictions = np.array([1, 0, 0])
        assert detection_delays(predictions, labels) == [0]

    def test_segment_recall(self):
        labels = np.array([1, 1, 0, 1, 1])
        predictions = np.array([0, 1, 0, 0, 0])
        assert segment_recall(predictions, labels) == 0.5

    def test_segment_recall_no_segments(self):
        assert segment_recall(np.zeros(3), np.zeros(3)) == 0.0
