"""End-to-end tests for the repro.analysis CLI, baseline mechanics, and the
acceptance scenario: deliberately breaking a determinism invariant in the
real tree must fail the lint gate."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, apply_baseline
from repro.analysis.baseline import (
    BaselineEntry,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import parse_pragmas
from repro.analysis.rules import Violation

REPO_ROOT = Path(__file__).resolve().parent.parent

CLEAN = "x = 1\n"
DIRTY = "def f(acc=[]):\n    return acc\n"  # one R6 violation


def run_cli(*args, cwd):
    """Run ``python -m repro.analysis`` in ``cwd`` with src/ on the path."""
    env_path = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture
def project(tmp_path):
    """A miniature project with one clean and one dirty file."""
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "clean.py").write_text(CLEAN)
    (tmp_path / "pkg" / "dirty.py").write_text(DIRTY)
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, project):
        result = run_cli("pkg/clean.py", cwd=project)
        assert result.returncode == 0, result.stdout
        assert "0 violations" in result.stdout

    def test_violation_exits_one(self, project):
        result = run_cli("pkg/dirty.py", cwd=project)
        assert result.returncode == 1
        assert "R6" in result.stdout

    def test_missing_target_exits_two(self, project):
        result = run_cli("no/such/dir", cwd=project)
        assert result.returncode == 2

    def test_syntax_error_is_reported_not_crashed(self, project):
        (project / "pkg" / "broken.py").write_text("def f(:\n")
        result = run_cli("pkg/broken.py", cwd=project)
        assert result.returncode == 1
        assert "broken.py" in result.stdout


class TestTextOutput:
    def test_violation_line_format(self, project):
        result = run_cli("pkg/dirty.py", cwd=project)
        # path:line:col: RULE message — clickable and grep-able
        assert "pkg/dirty.py:1:" in result.stdout
        assert "R6" in result.stdout

    def test_summary_line(self, project):
        result = run_cli("pkg", cwd=project)
        assert "2 files checked" in result.stdout
        assert "1 violations" in result.stdout


class TestJsonOutput:
    def test_json_payload(self, project):
        result = run_cli("pkg", "--format", "json", cwd=project)
        payload = json.loads(result.stdout)
        assert payload["ok"] is False
        assert payload["checked_files"] == 2
        assert [v["rule"] for v in payload["violations"]] == ["R6"]
        assert payload["violations"][0]["path"].endswith("dirty.py")

    def test_json_clean(self, project):
        result = run_cli("pkg/clean.py", "--format", "json", cwd=project)
        payload = json.loads(result.stdout)
        assert payload["ok"] is True
        assert payload["violations"] == []


class TestListRules:
    def test_lists_all_fourteen(self, project):
        result = run_cli("--list-rules", cwd=project)
        assert result.returncode == 0
        for rule_id in (f"R{i}" for i in range(1, 15)):
            assert rule_id in result.stdout


class TestSarifCli:
    def test_sarif_format_on_stdout(self, project):
        result = run_cli("pkg/dirty.py", "--format", "sarif", cwd=project)
        assert result.returncode == 1
        payload = json.loads(result.stdout)
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert any(r["ruleId"] == "R6" for r in results)

    def test_sarif_out_writes_file_alongside_text(self, project):
        result = run_cli(
            "pkg/dirty.py", "--sarif-out", "out.sarif", cwd=project
        )
        assert result.returncode == 1
        assert "R6" in result.stdout  # text format still printed
        payload = json.loads((project / "out.sarif").read_text())
        assert payload["runs"][0]["results"]


class TestCacheCli:
    def test_warm_run_output_is_identical(self, project):
        cold = run_cli(
            "pkg", "--cache-dir", ".lint-cache", "--format", "json",
            cwd=project,
        )
        warm = run_cli(
            "pkg", "--cache-dir", ".lint-cache", "--format", "json",
            cwd=project,
        )
        assert cold.returncode == warm.returncode == 1
        cold_payload = json.loads(cold.stdout)
        warm_payload = json.loads(warm.stdout)
        assert cold_payload["violations"] == warm_payload["violations"]
        assert warm_payload["cache"]["hits"] == 2
        assert warm_payload["cache"]["misses"] == 0
        assert warm_payload["cache"]["project_from_cache"] is True

    def test_text_summary_reports_cache_counters(self, project):
        run_cli("pkg", "--cache-dir", ".lint-cache", cwd=project)
        warm = run_cli("pkg", "--cache-dir", ".lint-cache", cwd=project)
        assert "cache: 2 hits, 0 misses" in warm.stdout


class TestBaselineCli:
    def test_update_baseline_then_clean(self, project):
        update = run_cli("pkg", "--update-baseline", cwd=project)
        assert update.returncode == 0
        baseline = project / ".repro-analysis-baseline.json"
        assert baseline.exists()

        result = run_cli("pkg", cwd=project)
        assert result.returncode == 0, result.stdout
        assert "1 grandfathered" in result.stdout

    def test_fixed_violation_makes_entry_stale(self, project):
        run_cli("pkg", "--update-baseline", cwd=project)
        (project / "pkg" / "dirty.py").write_text(CLEAN)

        result = run_cli("pkg", cwd=project)
        assert result.returncode == 1
        assert "STALE" in result.stdout

    def test_baseline_survives_line_shift(self, project):
        run_cli("pkg", "--update-baseline", cwd=project)
        # Prepend lines: the violation moves but its source text does not.
        (project / "pkg" / "dirty.py").write_text('"""doc"""\nimport os\n\n' + DIRTY)

        result = run_cli("pkg", cwd=project)
        assert result.returncode == 0, result.stdout
        assert "1 grandfathered" in result.stdout

    def test_new_violation_not_hidden_by_baseline(self, project):
        run_cli("pkg", "--update-baseline", cwd=project)
        (project / "pkg" / "fresh.py").write_text("def g(seen={1}):\n    return seen\n")

        result = run_cli("pkg", cwd=project)
        assert result.returncode == 1
        assert "fresh.py" in result.stdout


class TestBaselineSemantics:
    def _violation(self, path="pkg/a.py", rule="R6", source="def f(a=[]):", line=1):
        return Violation(
            path=path, line=line, col=1, rule=rule, message="m", source=source
        )

    def test_multiset_matching(self):
        # Two identical offending lines, one baseline entry: one stays new.
        violations = [self._violation(line=1), self._violation(line=9)]
        entries = [BaselineEntry(path="pkg/a.py", rule="R6", source="def f(a=[]):")]
        result = apply_baseline(violations, entries)
        assert len(result.grandfathered) == 1
        assert len(result.new_violations) == 1
        assert not result.stale_entries

    def test_whitespace_normalised_matching(self):
        # Indentation and run-of-spaces changes do not invalidate an entry.
        violations = [self._violation(source="    def  f(a=[]):")]
        entries = [BaselineEntry(path="pkg/a.py", rule="R6", source="def f(a=[]):")]
        result = apply_baseline(violations, entries)
        assert len(result.grandfathered) == 1

    def test_stale_entry_detected(self):
        entries = [BaselineEntry(path="pkg/gone.py", rule="R1", source="for x in s:")]
        result = apply_baseline([], entries)
        assert result.stale_entries == tuple(entries)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline(path, [self._violation()])
        entries = load_baseline(path)
        assert entries == [
            BaselineEntry(path="pkg/a.py", rule="R6", source="def f(a=[]):")
        ]

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ValueError, match="unsupported baseline format"):
            load_baseline(path)


class TestPragmaParsing:
    def test_parse_pragmas(self):
        lines = [
            "x = 1  # repro: noqa",
            "y = 2  # repro: noqa[R1]",
            "z = 3  # repro: noqa[R1, R2] reason text",
            "w = 4",
        ]
        pragmas = parse_pragmas(lines)
        assert pragmas[1] is None  # bare noqa: everything
        assert pragmas[2] == frozenset({"R1"})
        assert pragmas[3] == frozenset({"R1", "R2"})
        assert 4 not in pragmas


class TestRepoIsClean:
    """The committed tree passes its own linter (acceptance criterion)."""

    def test_repo_lints_clean(self):
        report = analyze_paths(
            [
                str(REPO_ROOT / "src" / "repro"),
                str(REPO_ROOT / "tests"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        assert not report.parse_failures
        rendered = "\n".join(v.render() for v in report.violations)
        assert not report.violations, f"lint violations in tree:\n{rendered}"


class TestTypecheckGate:
    """Strict mypy over the determinism-critical packages.  Skips where
    mypy is not installed (it is a CI-only tool, not a runtime dep)."""

    def test_mypy_strict_packages(self):
        pytest.importorskip("mypy")
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                "--config-file",
                "mypy.ini",
                "src/repro/core",
                "src/repro/graph",
                "src/repro/timeseries",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stdout


class TestAcceptanceBreakage:
    """Deliberately breaking R1 in louvain.py or R5 in parallel.py must be
    caught — this is what makes the CI lint job a real gate."""

    def _copy_tree(self, tmp_path):
        dest = tmp_path / "src" / "repro"
        shutil.copytree(REPO_ROOT / "src" / "repro", dest)
        return dest

    def test_r1_break_in_louvain_is_flagged(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        louvain = dest / "graph" / "louvain.py"
        source = louvain.read_text()
        # Inject an unordered iteration into the module: a set-driven loop.
        source += (
            "\n\ndef _broken_sweep(nodes):\n"
            "    pending = set(nodes)\n"
            "    order = []\n"
            "    for node in pending:\n"
            "        order.append(node)\n"
            "    return order\n"
        )
        louvain.write_text(source)
        report = analyze_paths([str(dest)])
        hits = [
            v
            for v in report.violations
            if v.rule == "R1" and v.path.endswith("louvain.py")
        ]
        assert hits, "R1 break in louvain.py was not flagged"

    def test_r5_break_in_parallel_is_flagged(self, tmp_path):
        dest = self._copy_tree(tmp_path)
        parallel = dest / "core" / "parallel.py"
        source = parallel.read_text()
        # Dispatch a lambda through the pool: not picklable, not a
        # module-level function.
        source += (
            "\n\ndef _broken_dispatch(pool, chunks):\n"
            "    return [pool.submit(lambda c: c, chunk) for chunk in chunks]\n"
        )
        parallel.write_text(source)
        report = analyze_paths([str(dest)])
        hits = [
            v
            for v in report.violations
            if v.rule == "R5" and v.path.endswith("parallel.py")
        ]
        assert hits, "R5 break in parallel.py was not flagged"
