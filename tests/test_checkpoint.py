"""Checkpoint/restore: a resumed stream must be bit-identical to an
uninterrupted one (the determinism the paper's Table VIII rests on)."""

import numpy as np
import pytest

from repro.core import (
    CAD,
    CADConfig,
    CoAppearanceTracker,
    RunningMoments,
    StreamingCAD,
    load_checkpoint,
    save_checkpoint,
)
from repro.timeseries import MultivariateTimeSeries


def run_interrupted(config, values, cut, tmp_path, warm_up=None):
    """Stream ``values`` with a save/load restart after ``cut`` samples."""
    stream = StreamingCAD(config, values.shape[0])
    if warm_up is not None:
        stream.warm_up(warm_up)
    records = stream.push_many(values[:, :cut])
    path = tmp_path / "stream.npz"
    stream.save(path)
    resumed = StreamingCAD.load(path)
    return records + resumed.push_many(values[:, cut:]), resumed


class TestRoundTrip:
    @pytest.mark.parametrize("cut", [37, 250, 743])
    def test_resumed_records_bit_identical(self, toy_config, toy_values, cut, tmp_path):
        uninterrupted = StreamingCAD(toy_config, 12)
        expected = uninterrupted.push_many(toy_values[:, :1200])

        got, resumed = run_interrupted(toy_config, toy_values[:, :1200], cut, tmp_path)

        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert a == b  # frozen dataclass: every field, bit for bit
        assert resumed.samples_seen == uninterrupted.samples_seen
        assert resumed.detector.moments == uninterrupted.detector.moments

    def test_round_trip_with_warm_up(self, toy_config, broken_series, tmp_path):
        history, test, _, _ = broken_series
        uninterrupted = StreamingCAD(toy_config, 12)
        uninterrupted.warm_up(history)
        expected = uninterrupted.push_many(test.values)

        got, _ = run_interrupted(
            toy_config, test.values, 333, tmp_path, warm_up=history
        )
        assert got == expected
        assert any(record.abnormal for record in got)

    def test_resume_before_first_window(self, toy_config, toy_values, tmp_path):
        """A checkpoint taken before any round exists restores cleanly."""
        got, _ = run_interrupted(
            toy_config, toy_values[:, :300], toy_config.window // 2, tmp_path
        )
        uninterrupted = StreamingCAD(toy_config, 12)
        assert got == uninterrupted.push_many(toy_values[:, :300])

    def test_degraded_stream_round_trip(self, toy_config, toy_values, tmp_path):
        """NaN readings in the buffer survive the checkpoint round-trip."""
        from dataclasses import replace

        config = replace(toy_config, allow_missing=True)
        rng = np.random.default_rng(7)
        values = toy_values[:, :600].copy()
        values[rng.random(values.shape) < 0.05] = np.nan

        uninterrupted = StreamingCAD(config, 12)
        expected = uninterrupted.push_many(values)
        got, _ = run_interrupted(config, values, 311, tmp_path)
        assert got == expected

    @pytest.mark.parametrize("rc_mode", ["running", "decay", "window"])
    def test_all_rc_modes(self, toy_values, rc_mode, tmp_path):
        from dataclasses import replace

        config = CADConfig(
            window=80, step=8, k=4, tau=0.5, theta=0.2, rc_mode=rc_mode, rc_window=6
        )
        uninterrupted = StreamingCAD(config, 12)
        expected = uninterrupted.push_many(toy_values[:, :600])
        got, _ = run_interrupted(config, toy_values[:, :600], 401, tmp_path)
        assert got == expected


class TestCheckpointFile:
    def test_module_level_functions(self, toy_config, toy_values, tmp_path):
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "ck.npz"
        save_checkpoint(stream, path)
        restored = load_checkpoint(path)
        assert restored.samples_seen == 200
        assert restored.detector.rounds_processed == stream.detector.rounds_processed

    def test_config_survives(self, toy_config, toy_values, tmp_path):
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "ck.npz"
        stream.save(path)
        assert StreamingCAD.load(path).detector.config == toy_config

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, scores=np.zeros(4))
        with pytest.raises(ValueError, match="not a StreamingCAD checkpoint"):
            load_checkpoint(path)

    def test_rejects_unknown_version(self, toy_config, toy_values, tmp_path):
        import json

        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :150])
        path = tmp_path / "ck.npz"
        stream.save(path)
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(str(arrays["meta"]))
        meta["version"] = 999
        arrays["meta"] = np.array(json.dumps(meta))
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_checkpoint(path)


def downgrade_to_v1(path):
    """Rewrite a v2 checkpoint file into the v1 on-disk layout.

    Version 1 predates the fast engine: no kernel arrays, no ``has_kernel``
    flag, and a config without the ``engine``/``corr_refresh``/``n_jobs``
    keys.  This reproduces exactly what a PR-1-era process wrote.
    """
    import json

    with np.load(path) as archive:
        arrays = {name: archive[name] for name in archive.files}
    meta = json.loads(str(arrays["meta"]))
    meta["version"] = 1
    meta.pop("has_kernel", None)
    meta.pop("kernel", None)
    for key in ("engine", "corr_refresh", "n_jobs"):
        meta["config"].pop(key, None)
    arrays = {
        name: value
        for name, value in arrays.items()
        if not name.startswith("kernel_")
    }
    arrays["meta"] = np.array(json.dumps(meta))
    np.savez(path, **arrays)


class TestV1Migration:
    """v1 -> v2 loading: old checkpoints keep resuming bit-identically."""

    def _reference_config(self, toy_config):
        from dataclasses import replace

        return replace(toy_config, engine="reference", corr_refresh=1, n_jobs=1)

    def test_v1_checkpoint_loads_and_resumes_bit_identically(
        self, toy_config, toy_values, tmp_path
    ):
        config = self._reference_config(toy_config)
        cut = 400
        uninterrupted = StreamingCAD(config, 12)
        expected = uninterrupted.push_many(toy_values[:, :900])

        stream = StreamingCAD(config, 12)
        records = stream.push_many(toy_values[:, :cut])
        path = tmp_path / "v1.npz"
        stream.save(path)
        downgrade_to_v1(path)

        resumed = StreamingCAD.load(path)
        got = records + resumed.push_many(toy_values[:, cut:900])
        assert len(got) == len(expected)
        for a, b in zip(got, expected):
            assert a == b  # bit-identical resume across the format migration

    def test_v1_config_pins_reference_engine(
        self, toy_config, toy_values, tmp_path
    ):
        """A v1 file must restore the engine that wrote it, not today's
        default — the reference path was the only engine back then."""
        config = self._reference_config(toy_config)
        stream = StreamingCAD(config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "v1.npz"
        stream.save(path)
        downgrade_to_v1(path)

        restored = StreamingCAD.load(path)
        assert restored.detector.config.engine == "reference"
        assert restored.detector.config.corr_refresh == 1
        assert restored.detector.config.n_jobs == 1
        assert restored.detector.config == config

    def test_v1_has_no_kernel_state(self, toy_config, toy_values, tmp_path):
        config = self._reference_config(toy_config)
        stream = StreamingCAD(config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "v1.npz"
        stream.save(path)
        downgrade_to_v1(path)
        restored = StreamingCAD.load(path)
        assert restored.detector._pipeline.kernel is None

    def test_v2_files_still_load_after_migration_support(
        self, toy_config, toy_values, tmp_path
    ):
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "v2.npz"
        stream.save(path)
        restored = StreamingCAD.load(path)
        assert restored.detector.config == toy_config


class TestComponentState:
    def test_running_moments_state(self):
        moments = RunningMoments()
        for value in (3.0, 7.5, 1.25, 4.0):
            moments.push(value)
        restored = RunningMoments.from_state(moments.to_state())
        assert restored.snapshot() == moments.snapshot()
        assert restored.count == moments.count
        moments.push(2.0)
        restored.push(2.0)
        assert restored.snapshot() == moments.snapshot()

    def test_tracker_state_round_trip(self):
        rng = np.random.default_rng(3)
        tracker = CoAppearanceTracker(8, mode="window", window=4)
        for _ in range(6):
            tracker.update(rng.integers(0, 3, size=8))
        restored = CoAppearanceTracker.from_state(tracker.to_state())
        labels = rng.integers(0, 3, size=8)
        a = tracker.update(labels)
        b = restored.update(labels)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_cad_state_round_trip_mid_detect(self, toy_config):
        from tests.conftest import correlated_values

        values = correlated_values(seed=5)
        series = MultivariateTimeSeries(values[:, :1600])
        reference = CAD(toy_config, 12)
        reference.warm_up(MultivariateTimeSeries(values[:, 1600:]))

        restored = CAD.from_state(reference.to_state())
        result_a = reference.detect(series)
        result_b = restored.detect(series)
        assert result_a.rounds == result_b.rounds

    def test_tracker_width_mismatch_rejected(self, toy_config):
        detector = CAD(toy_config, 12)
        state = detector.to_state()
        state["n_sensors"] = 13
        with pytest.raises(ValueError):
            CAD.from_state(state)


class TestCheckpointError:
    """Every load failure surfaces as a typed error naming the file."""

    def test_missing_file(self, tmp_path):
        from repro.core import CheckpointError

        missing = tmp_path / "nope.npz"
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(missing)
        assert excinfo.value.path == missing

    def test_truncated_archive(self, toy_config, toy_values, tmp_path):
        from repro.core import CheckpointError

        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "torn.npz"
        stream.save(path)
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 3)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.path == path
        assert excinfo.value.reason

    def test_is_a_value_error(self):
        from repro.core import CheckpointError

        assert issubclass(CheckpointError, ValueError)

    def test_failed_save_leaves_no_tmp(self, toy_config, toy_values, tmp_path):
        """An exploding write must not litter ``.tmp`` staging files."""
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :200])
        target = tmp_path / "sub" / "ck.npz"  # parent missing -> open fails
        with pytest.raises(OSError):
            save_checkpoint(stream, target)
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_save_is_atomic_over_existing(self, toy_config, toy_values, tmp_path):
        """Re-saving over a checkpoint never exposes a partial file."""
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :200])
        path = tmp_path / "ck.npz"
        stream.save(path)
        first = path.read_bytes()
        stream.push_many(toy_values[:, 200:400])
        stream.save(path)
        assert path.read_bytes() != first
        assert load_checkpoint(path).samples_seen == 400
        assert not list(tmp_path.glob("*.tmp"))
