"""Tests for the univariate methods and the MTS adapter."""

import numpy as np
import pytest

from repro.baselines import (
    NormA,
    SAND,
    Series2Graph,
    StreamingSAND,
    UnivariateAdapter,
    spread_to_points,
    subsequences,
)
from repro.timeseries import MultivariateTimeSeries


def periodic_with_anomaly(seed=0, length=1200, span=(700, 760)):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    series = np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(length)
    series[span[0] : span[1]] = 1.5 + 0.05 * rng.standard_normal(span[1] - span[0])
    return series, span


def clean_periodic(seed=1, length=1200):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return np.sin(2 * np.pi * t / 24) + 0.05 * rng.standard_normal(length)


class TestHelpers:
    def test_subsequences_shape(self):
        subs = subsequences(np.arange(10.0), 4, stride=2)
        assert subs.shape == (4, 4)
        np.testing.assert_array_equal(subs[1], [2, 3, 4, 5])

    def test_subsequences_invalid(self):
        with pytest.raises(ValueError):
            subsequences(np.arange(5.0), 10)
        with pytest.raises(ValueError):
            subsequences(np.arange(5.0), 2, stride=0)

    def test_spread_to_points_max_pools(self):
        points = spread_to_points(np.array([1.0, 3.0]), length=6, window=3, stride=2)
        np.testing.assert_array_equal(points, [1, 1, 3, 3, 3, 0])


@pytest.mark.parametrize(
    "factory",
    [
        lambda: Series2Graph(pattern_length=24),
        lambda: SAND(pattern_length=24, seed=0),
        lambda: StreamingSAND(pattern_length=24, seed=0),
        lambda: NormA(pattern_length=24, seed=0),
    ],
    ids=["S2G", "SAND", "SAND*", "NormA"],
)
class TestUnivariateCommon:
    def test_scores_anomaly_above_normal(self, factory):
        train = clean_periodic()
        test, (start, stop) = periodic_with_anomaly()
        detector = factory()
        detector.fit(train)
        scores = detector.score(test)
        assert scores.shape == (test.size,)
        inside = scores[start:stop].mean()
        outside = np.concatenate([scores[:start], scores[stop:]]).mean()
        assert inside > outside

    def test_score_before_fit(self, factory):
        with pytest.raises(RuntimeError):
            factory().score(clean_periodic())


class TestS2G:
    def test_deterministic(self):
        train = clean_periodic()
        test, _ = periodic_with_anomaly()
        a = Series2Graph(pattern_length=24)
        a.fit(train)
        b = Series2Graph(pattern_length=24)
        b.fit(train)
        np.testing.assert_array_equal(a.score(test), b.score(test))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Series2Graph(pattern_length=2)
        with pytest.raises(ValueError):
            Series2Graph(n_bins=2)

    def test_short_train_rejected(self):
        with pytest.raises(ValueError):
            Series2Graph(pattern_length=24).fit(np.zeros(20))


class TestSandVariants:
    def test_sand_centroids_weighted(self):
        detector = SAND(pattern_length=24, n_clusters=3, seed=0)
        detector.fit(clean_periodic())
        assert detector._centroids.shape[0] == 3
        assert detector._weights.sum() > 0

    def test_streaming_updates_model(self):
        detector = StreamingSAND(pattern_length=24, n_clusters=2, seed=0)
        detector.fit(clean_periodic())
        before = detector._centroids.copy()
        test, _ = periodic_with_anomaly()
        detector.score(test)
        after = detector._centroids
        assert before.shape != after.shape or not np.allclose(before, after)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            StreamingSAND(alpha=0.0)

    def test_invalid_max_centroids(self):
        with pytest.raises(ValueError):
            StreamingSAND(n_clusters=8, max_centroids=4)


class TestNorma:
    def test_weights_normalised(self):
        detector = NormA(pattern_length=24, seed=0)
        detector.fit(clean_periodic())
        assert detector._weights.sum() == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NormA(pattern_length=2)
        with pytest.raises(ValueError):
            NormA(n_motifs=0)

    def test_short_test_rejected(self):
        detector = NormA(pattern_length=24, seed=0)
        detector.fit(clean_periodic())
        with pytest.raises(ValueError):
            detector.score(np.zeros(10))


class TestAdapter:
    def make_mts(self, with_anomaly):
        rows = []
        span = None
        for i in range(3):
            if with_anomaly:
                row, span = periodic_with_anomaly(seed=i)
            else:
                row = clean_periodic(seed=i)
            rows.append(row)
        return MultivariateTimeSeries(np.vstack(rows)), span

    def test_adapter_runs_per_sensor_and_averages(self):
        train, _ = self.make_mts(False)
        test, span = self.make_mts(True)
        adapter = UnivariateAdapter(
            lambda pattern, i: NormA(pattern_length=pattern, seed=i),
            name="NormA",
            deterministic=False,
        )
        adapter.fit(train)
        assert adapter.pattern_length is not None
        scores = adapter.score(test)
        assert scores.shape == (test.length,)
        assert scores[span[0] : span[1]].mean() > scores[: span[0]].mean()

    def test_adapter_pattern_estimated_from_train(self):
        train, _ = self.make_mts(False)
        adapter = UnivariateAdapter(
            lambda pattern, i: NormA(pattern_length=pattern, seed=i),
            name="NormA",
            deterministic=False,
        )
        adapter.fit(train)
        assert 8 <= adapter.pattern_length <= 128

    def test_adapter_sensor_mismatch(self):
        train, _ = self.make_mts(False)
        adapter = UnivariateAdapter(
            lambda pattern, i: Series2Graph(pattern_length=pattern),
            name="S2G",
            deterministic=True,
        )
        adapter.fit(train)
        with pytest.raises(ValueError):
            adapter.score(MultivariateTimeSeries(np.zeros((5, 500))))

    def test_adapter_score_before_fit(self):
        adapter = UnivariateAdapter(
            lambda pattern, i: Series2Graph(pattern_length=pattern),
            name="S2G",
            deterministic=True,
        )
        test, _ = self.make_mts(True)
        with pytest.raises(RuntimeError):
            adapter.score(test)
