"""Tests for Louvain community detection and modularity."""

import numpy as np
import pytest

from repro.graph import Graph, louvain, modularity


def two_cliques(size=4, bridge_weight=0.1):
    """Two dense cliques joined by one weak bridge edge."""
    g = Graph(2 * size)
    for base in (0, size):
        for i in range(size):
            for j in range(i + 1, size):
                g.add_edge(base + i, base + j, 1.0)
    g.add_edge(size - 1, size, bridge_weight)
    return g


class TestModularity:
    def test_empty_graph(self):
        assert modularity(Graph(3), [0, 1, 2]) == 0.0

    def test_single_community_zero(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(0, 2)
        assert modularity(g, [0, 0, 0]) == pytest.approx(0.0)

    def test_good_partition_beats_bad(self):
        g = two_cliques()
        good = [0] * 4 + [1] * 4
        bad = [0, 1, 0, 1, 0, 1, 0, 1]
        assert modularity(g, good) > modularity(g, bad)

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            modularity(Graph(3), [0, 0])

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(0)
        g = Graph(10)
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(10))
        for _ in range(20):
            u, v = rng.integers(0, 10, 2)
            if u == v:
                continue
            w = float(rng.uniform(0.1, 1.0))
            g.add_edge(int(u), int(v), w)
            nx_graph.add_edge(int(u), int(v), weight=w)
        labels = [i % 3 for i in range(10)]
        groups = [{i for i in range(10) if labels[i] == c} for c in range(3)]
        expected = networkx.algorithms.community.modularity(nx_graph, groups)
        assert modularity(g, labels) == pytest.approx(expected)


class TestLouvain:
    def test_two_cliques_split(self):
        result = louvain(two_cliques())
        assert result.n_communities == 2
        labels = result.labels
        assert len(set(labels[:4])) == 1
        assert len(set(labels[4:])) == 1
        assert labels[0] != labels[4]

    def test_labels_compact(self):
        result = louvain(two_cliques())
        assert set(result.labels) == set(range(result.n_communities))

    def test_deterministic(self):
        g = two_cliques(5)
        first = louvain(g)
        second = louvain(g)
        assert first.labels == second.labels

    def test_singletons_without_edges(self):
        result = louvain(Graph(5))
        assert result.n_communities == 5

    def test_modularity_reported_matches(self):
        g = two_cliques()
        result = louvain(g)
        assert result.modularity == pytest.approx(modularity(g, list(result.labels)))

    def test_rejects_negative_weights(self):
        g = Graph(2)
        g.add_edge(0, 1, -0.5)
        with pytest.raises(ValueError, match="non-negative"):
            louvain(g)

    def test_members(self):
        result = louvain(two_cliques())
        members = result.members()
        assert sorted(sum(members, [])) == list(range(8))

    def test_three_cliques(self):
        g = Graph(12)
        for base in (0, 4, 8):
            for i in range(4):
                for j in range(i + 1, 4):
                    g.add_edge(base + i, base + j, 1.0)
        g.add_edge(3, 4, 0.05)
        g.add_edge(7, 8, 0.05)
        result = louvain(g)
        assert result.n_communities == 3

    def test_matches_networkx_quality(self):
        """Louvain should find partitions as good as networkx's (both greedy)."""
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(1)
        n = 24
        g = Graph(n)
        nx_graph = networkx.Graph()
        nx_graph.add_nodes_from(range(n))
        # Planted 3-community structure.
        for u in range(n):
            for v in range(u + 1, n):
                same = (u % 3) == (v % 3)
                p = 0.6 if same else 0.05
                if rng.random() < p:
                    g.add_edge(u, v, 1.0)
                    nx_graph.add_edge(u, v, weight=1.0)
        ours = louvain(g)
        theirs = networkx.algorithms.community.louvain_communities(nx_graph, seed=0)
        theirs_quality = networkx.algorithms.community.modularity(nx_graph, theirs)
        assert ours.modularity >= theirs_quality - 0.05

    def test_resolution_changes_granularity(self):
        g = two_cliques(4, bridge_weight=2.0)
        coarse = louvain(g, resolution=0.2)
        fine = louvain(g, resolution=2.0)
        assert coarse.n_communities <= fine.n_communities
