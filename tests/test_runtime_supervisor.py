"""The supervised runtime: watchdog, retries, quarantine, crash recovery.

The load-bearing claim throughout: supervision must never change the
answer.  Every scenario that only injects *process* faults (crashes,
stalls, torn checkpoints, process death + resume) asserts the emitted
``RoundRecord`` sequence is bit-identical to the plain unsupervised run.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import correlated_values
from repro.core import CADConfig, StreamingCAD
from repro.datasets import FaultModel
from repro.runtime import (
    BreakerPolicy,
    BreakerState,
    ChaosModel,
    QueueOverflowError,
    RetryBudgetExceededError,
    RetryPolicy,
    StreamSupervisor,
    SupervisorConfig,
    VirtualClock,
)
from repro.timeseries import MultivariateTimeSeries

N_SENSORS = 8
CONFIG = CADConfig(window=48, step=8, allow_missing=True)


@pytest.fixture(scope="module")
def feed():
    values = correlated_values(n_sensors=N_SENSORS, length=1000, seed=21)
    history = MultivariateTimeSeries(values[:, :200])
    return history, values[:, 200:]


@pytest.fixture(scope="module")
def baseline(feed):
    history, live = feed
    stream = StreamingCAD(CONFIG, N_SENSORS)
    stream.warm_up(history)
    return stream.push_many(live)


def make_supervisor(sup_config=None, **kwargs) -> StreamSupervisor:
    kwargs.setdefault("clock", VirtualClock())
    return StreamSupervisor(CONFIG, N_SENSORS, supervisor=sup_config, **kwargs)


class TestQuietEquivalence:
    def test_no_fault_run_is_bit_identical(self, feed, baseline):
        history, live = feed
        supervisor = make_supervisor()
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        assert records == baseline

    def test_health_of_quiet_run(self, feed):
        history, live = feed
        supervisor = make_supervisor()
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        health = supervisor.health()
        assert health.healthy
        assert health.rounds_completed == len(records)
        assert health.samples_ingested == live.shape[1]
        assert health.retries == 0
        assert health.open_breakers == ()

    def test_quarantine_needs_allow_missing(self):
        strict = CADConfig(window=48, step=8, allow_missing=False)
        with pytest.raises(ValueError, match="allow_missing"):
            StreamSupervisor(strict, N_SENSORS)
        # Disabling breakers lifts the requirement.
        StreamSupervisor(
            strict,
            N_SENSORS,
            supervisor=SupervisorConfig(breaker=BreakerPolicy(failure_threshold=0)),
        )

    def test_sample_shape_validated(self):
        supervisor = make_supervisor()
        with pytest.raises(ValueError):
            supervisor.process(np.zeros(N_SENSORS + 1))


class TestChaosRecovery:
    def test_crashes_and_stalls_recover_bit_identically(
        self, feed, baseline, tmp_path
    ):
        history, live = feed
        supervisor = make_supervisor(
            SupervisorConfig(
                retry=RetryPolicy(max_retries=5, base_delay=0.01, seed=1),
                round_deadline=1.0,
                checkpoint_every=10,
                keep_checkpoints=5,
            ),
            checkpoint_dir=tmp_path,
            chaos=ChaosModel(
                seed=5,
                crash_rate=0.1,
                slow_rate=0.1,
                slow_seconds=2.0,
                corrupt_rate=0.2,
            ),
        )
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        assert records == baseline
        health = supervisor.health()
        assert health.crashes_recovered > 0
        assert health.slow_rounds > 0
        assert health.retries > 0
        assert health.checkpoints_written > 0

    def test_backoff_sleeps_through_injected_clock(self, feed, tmp_path):
        history, live = feed
        clock = VirtualClock()
        supervisor = make_supervisor(
            SupervisorConfig(retry=RetryPolicy(max_retries=5, base_delay=0.5, seed=2)),
            checkpoint_dir=tmp_path,
            clock=clock,
            chaos=ChaosModel(seed=5, crash_rate=0.1),
        )
        supervisor.warm_up(history)
        supervisor.process_many(live)
        retries = supervisor.health().retries
        assert retries > 0
        assert clock.slept >= retries * 0.5, "every retry must back off first"

    def test_crash_without_checkpoint_dir_replays_from_scratch(self, feed, baseline):
        history, live = feed
        supervisor = make_supervisor(
            SupervisorConfig(retry=RetryPolicy(max_retries=5, base_delay=0.01)),
            chaos=ChaosModel(seed=5, crash_rate=0.05),
        )
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        assert records == baseline
        assert supervisor.health().crashes_recovered > 0

    def test_retry_budget_exhaustion_raises(self, feed, tmp_path):
        history, live = feed
        # crash_rate ~ 1 makes every attempt of every round crash.
        supervisor = make_supervisor(
            SupervisorConfig(retry=RetryPolicy(max_retries=2, base_delay=0.0)),
            checkpoint_dir=tmp_path,
            chaos=ChaosModel(seed=0, crash_rate=0.99),
        )
        supervisor.warm_up(history)
        with pytest.raises(RetryBudgetExceededError) as excinfo:
            supervisor.process_many(live)
        assert excinfo.value.attempts == 3

    def test_late_round_accepted_when_budget_exhausted(self, feed, baseline):
        """Persistent slowness must degrade latency, not liveness."""
        history, live = feed
        supervisor = make_supervisor(
            SupervisorConfig(
                retry=RetryPolicy(max_retries=0),
                round_deadline=0.5,
            ),
            chaos=ChaosModel(seed=3, slow_rate=0.98, slow_seconds=1.0),
        )
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        assert records == baseline
        health = supervisor.health()
        assert health.slow_rounds > 0
        assert health.retries == 0


class TestWatchdog:
    def test_stall_past_deadline_triggers_retry(self, feed, baseline, tmp_path):
        history, live = feed
        supervisor = make_supervisor(
            SupervisorConfig(
                retry=RetryPolicy(max_retries=3, base_delay=0.01, seed=4),
                round_deadline=1.0,
                checkpoint_every=5,
            ),
            checkpoint_dir=tmp_path,
            chaos=ChaosModel(seed=8, slow_rate=0.1, slow_seconds=5.0),
        )
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        assert records == baseline
        health = supervisor.health()
        assert health.slow_rounds > 0
        assert health.retries > 0
        assert health.crashes_recovered == 0

    def test_stall_under_deadline_is_not_retried(self, feed, baseline):
        history, live = feed
        supervisor = make_supervisor(
            SupervisorConfig(round_deadline=10.0),
            chaos=ChaosModel(seed=8, slow_rate=0.2, slow_seconds=0.5),
        )
        supervisor.warm_up(history)
        records = supervisor.process_many(live)
        assert records == baseline
        assert supervisor.health().retries == 0


class TestIngestQueue:
    def test_drop_oldest_sheds_but_accepts(self):
        supervisor = make_supervisor(
            SupervisorConfig(queue_capacity=4, shed_policy="drop_oldest")
        )
        for value in range(8):
            assert supervisor.submit(np.full(N_SENSORS, float(value)))
        health = supervisor.health()
        assert health.queue_depth == 4
        assert health.samples_shed == 4
        assert not health.healthy

    def test_drop_newest_rejects_offer(self):
        supervisor = make_supervisor(
            SupervisorConfig(queue_capacity=2, shed_policy="drop_newest")
        )
        assert supervisor.submit(np.zeros(N_SENSORS))
        assert supervisor.submit(np.zeros(N_SENSORS))
        assert not supervisor.submit(np.zeros(N_SENSORS))

    def test_error_policy_raises(self):
        supervisor = make_supervisor(
            SupervisorConfig(queue_capacity=1, shed_policy="error")
        )
        supervisor.submit(np.zeros(N_SENSORS))
        with pytest.raises(QueueOverflowError):
            supervisor.submit(np.zeros(N_SENSORS))

    def test_submit_pump_equals_process(self, feed, baseline):
        history, live = feed
        supervisor = make_supervisor(SupervisorConfig(queue_capacity=4096))
        supervisor.warm_up(history)
        records = []
        for column in live.T:
            supervisor.submit(column)
        records = supervisor.pump()
        assert records == baseline


class TestQuarantine:
    def test_flapping_sensor_walks_the_breaker_lifecycle(self, feed, baseline):
        history, live = feed
        flap_sensor, step = 2, CONFIG.step
        flap_start = 30 * step + CONFIG.window  # aligned after warm rounds
        flap_stop = flap_start + 20 * step
        faults = FaultModel(
            flapping=((flap_sensor, flap_start, flap_stop, step, 0.75),), seed=1
        )
        flapped = faults.apply(live)
        supervisor = make_supervisor(
            SupervisorConfig(
                breaker=BreakerPolicy(
                    failure_threshold=3, open_rounds=6, probation_rounds=3
                )
            )
        )
        supervisor.warm_up(history)
        records = supervisor.process_many(flapped)
        health = supervisor.health()
        breaker = supervisor.breakers[flap_sensor]

        assert health.breaker_trips > 0, "flapping must trip the breaker"
        assert breaker.state is BreakerState.CLOSED, "healed sensor must re-close"
        assert len(records) == len(baseline), "stream must complete"
        clean_prefix = sum(1 for r in baseline if r.stop <= flap_start)
        assert records[:clean_prefix] == baseline[:clean_prefix]
        assert health.degraded_rounds > 0

    def test_quarantined_rounds_report_degraded_quality(self, feed):
        history, live = feed
        live = live.copy()
        live[5, 100:400] = np.nan  # hard dropout -> breaker must open
        supervisor = make_supervisor(
            SupervisorConfig(
                breaker=BreakerPolicy(
                    failure_threshold=2, open_rounds=10, probation_rounds=2
                )
            )
        )
        supervisor.warm_up(history)
        supervisor.process_many(live)
        assert supervisor.breakers[5].times_opened > 0


class TestProcessDeathResume:
    def run_split(self, feed, tmp_path, kill_at: int):
        """Run to ``kill_at`` samples, drop the supervisor, resume, finish."""
        history, live = feed
        sup_config = SupervisorConfig(checkpoint_every=5, keep_checkpoints=3)
        first = make_supervisor(sup_config, checkpoint_dir=tmp_path)
        first.warm_up(history)
        records_before = first.process_many(live[:, :kill_at])
        del first  # process death: in-memory state and replay buffer gone

        resumed = make_supervisor(sup_config, checkpoint_dir=tmp_path)
        # The checkpoint is at or before the kill point; the source must
        # re-send everything after it (exactly what a durable feed does).
        restart = resumed.stream.samples_seen
        assert restart <= kill_at
        records_after = resumed.process_many(live[:, restart:])
        return records_before, records_after

    def test_resume_covers_the_stream_without_divergence(
        self, feed, baseline, tmp_path
    ):
        before, after = self.run_split(feed, tmp_path, kill_at=500)
        merged: dict[int, object] = {}
        for record in [*before, *after]:
            if record.index in merged:
                assert merged[record.index] == record, "re-emitted round differs"
            merged[record.index] = record
        assert sorted(merged) == [r.index for r in baseline]
        assert [merged[r.index] for r in baseline] == baseline

    def test_rounds_before_last_checkpoint_not_reemitted(self, feed, tmp_path):
        before, after = self.run_split(feed, tmp_path, kill_at=500)
        emitted_before = {record.index for record in before}
        re_emitted = [r.index for r in after if r.index in emitted_before]
        # Only rounds after the adopted checkpoint's high-water mark may
        # repeat; everything older must be suppressed.
        if re_emitted:
            assert min(re_emitted) > max(
                set(range(before[0].index, before[-1].index + 1)) - emitted_before,
                default=-1,
            )
        assert [r.index for r in after] == sorted({r.index for r in after})


@settings(max_examples=12, deadline=None)
@given(kill_at=st.integers(min_value=1, max_value=799))
def test_kill_anywhere_resume_is_bit_identical(kill_at, tmp_path_factory):
    """Property (ISSUE satellite): kill the stream between arbitrary rounds,
    restore from the rotated directory, and the union of emitted records is
    bit-identical to the uninterrupted run."""
    values = correlated_values(n_sensors=6, length=1000, seed=33)
    history = MultivariateTimeSeries(values[:, :200])
    live = values[:, 200:]
    config = CADConfig(window=48, step=8, allow_missing=True)

    stream = StreamingCAD(config, 6)
    stream.warm_up(history)
    baseline = stream.push_many(live)

    tmp_path = tmp_path_factory.mktemp("resume")
    sup_config = SupervisorConfig(checkpoint_every=4, keep_checkpoints=2)
    first = StreamSupervisor(
        config, 6, supervisor=sup_config, checkpoint_dir=tmp_path, clock=VirtualClock()
    )
    first.warm_up(history)
    before = first.process_many(live[:, :kill_at])
    del first

    resumed = StreamSupervisor(
        config, 6, supervisor=sup_config, checkpoint_dir=tmp_path, clock=VirtualClock()
    )
    if resumed.stream.samples_seen == 0:
        resumed.warm_up(history)  # killed before the first checkpoint
    after = resumed.process_many(live[:, resumed.stream.samples_seen :])

    merged: dict[int, object] = {}
    for record in [*before, *after]:
        if record.index in merged:
            assert merged[record.index] == record
        merged[record.index] = record
    assert [merged[r.index] for r in baseline] == baseline
