"""Tests for outlier sets, variations and running moments (Defs 7-8)."""

import numpy as np
import pytest

from repro.core import RunningMoments, outlier_set, outlier_variations
from repro.core.variation import transition_set


class TestOutlierSet:
    def test_below_threshold(self):
        rc = np.array([0.5, 0.1, 0.3, 0.29])
        assert outlier_set(rc, 0.3) == frozenset({1, 3})

    def test_strict_inequality(self):
        rc = np.array([0.3])
        assert outlier_set(rc, 0.3) == frozenset()

    def test_empty(self):
        assert outlier_set(np.array([0.9, 0.8]), 0.1) == frozenset()

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            outlier_set(np.array([0.5]), 1.5)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            outlier_set(np.zeros((2, 2)), 0.5)


class TestVariations:
    def test_symmetric_difference(self):
        previous = frozenset({1, 2, 3})
        current = frozenset({3, 4})
        assert transition_set(previous, current) == frozenset({1, 2, 4})
        assert outlier_variations(previous, current) == 3

    def test_no_change(self):
        s = frozenset({1, 2})
        assert outlier_variations(s, s) == 0

    def test_from_empty(self):
        assert outlier_variations(frozenset(), frozenset({1, 2})) == 2


class TestRunningMoments:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.normal(3.0, 2.0, 100)
        moments = RunningMoments()
        for value in values:
            moments.push(value)
        assert moments.mean == pytest.approx(values.mean())
        assert moments.std == pytest.approx(values.std())
        assert moments.count == 100

    def test_single_value(self):
        moments = RunningMoments()
        moments.push(5.0)
        assert moments.mean == 5.0
        assert moments.std == 0.0

    def test_empty(self):
        moments = RunningMoments()
        assert moments.mean == 0.0
        assert moments.std == 0.0
        assert moments.count == 0

    def test_snapshot(self):
        moments = RunningMoments()
        moments.push(1.0)
        moments.push(3.0)
        mean, std = moments.snapshot()
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)

    def test_constant_stream(self):
        moments = RunningMoments()
        for _ in range(10):
            moments.push(4.0)
        assert moments.std == pytest.approx(0.0, abs=1e-12)
