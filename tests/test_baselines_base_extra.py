"""Edge-case tests for the shared detector plumbing and USAD windowing."""

import numpy as np
import pytest

from repro.baselines.base import AnomalyDetector
from repro.baselines.usad import _window_rows
from repro.timeseries import MultivariateTimeSeries


class Minimal(AnomalyDetector):
    """Smallest conforming detector, for interface tests."""

    name = "minimal"

    def fit(self, train):
        self._fitted = True
        return self

    def score(self, test):
        self._require_fitted("_fitted")
        return np.zeros(test.length)


class TestInterface:
    def test_sensor_scores_default_none(self):
        series = MultivariateTimeSeries(np.random.default_rng(0).random((2, 20)))
        detector = Minimal().fit(series)
        assert detector.sensor_scores(series) is None

    def test_require_fitted_message_names_method(self):
        series = MultivariateTimeSeries(np.zeros((2, 5)) + np.arange(5))
        with pytest.raises(RuntimeError, match="minimal"):
            Minimal().score(series)

    def test_chained_fit_returns_self(self):
        series = MultivariateTimeSeries(np.random.default_rng(0).random((2, 20)))
        detector = Minimal()
        assert detector.fit(series) is detector


class TestWindowRows:
    def test_shape(self):
        values = np.arange(12.0).reshape(2, 6)
        rows = _window_rows(values, window=3)
        assert rows.shape == (4, 6)

    def test_content_layout(self):
        # Sensors are concatenated per window: [s0[w], s1[w]].
        values = np.array([[0.0, 1.0, 2.0], [10.0, 11.0, 12.0]])
        rows = _window_rows(values, window=2)
        np.testing.assert_array_equal(rows[0], [0.0, 1.0, 10.0, 11.0])
        np.testing.assert_array_equal(rows[1], [1.0, 2.0, 11.0, 12.0])

    def test_too_short(self):
        with pytest.raises(ValueError):
            _window_rows(np.zeros((2, 3)), window=5)
