"""Retry/backoff policy and clock: deterministic, seeded, bounded."""

import numpy as np
import pytest

from repro.runtime import MonotonicClock, RetryPolicy, VirtualClock


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=42)
        assert policy.delay(7, 2) == policy.delay(7, 2)
        again = RetryPolicy(seed=42)
        assert policy.delay(7, 2) == again.delay(7, 2)

    def test_delay_varies_with_round_and_attempt(self):
        policy = RetryPolicy(seed=0, jitter=0.5)
        delays = {policy.delay(r, a) for r in range(4) for a in range(2)}
        assert len(delays) == 8, "jitter must decorrelate (round, attempt) pairs"

    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0, max_delay=100.0)
        assert policy.delay(0, 0) == pytest.approx(0.1)
        assert policy.delay(0, 1) == pytest.approx(0.2)
        assert policy.delay(0, 3) == pytest.approx(0.8)

    def test_max_delay_caps_growth(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=10.0, jitter=0.0, max_delay=5.0)
        assert policy.delay(0, 4) == pytest.approx(5.0)

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.25, max_delay=1.0)
        for attempt in range(20):
            delay = policy.delay(3, attempt)
            assert 1.0 <= delay <= 1.25

    def test_zero_base_delay_stays_zero(self):
        policy = RetryPolicy(base_delay=0.0, jitter=0.5)
        assert policy.delay(0, 5) == pytest.approx(0.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"base_delay": -0.1},
            {"multiplier": 0.5},
            {"max_delay": 0.01, "base_delay": 0.05},
            {"jitter": -0.1},
            {"seed": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestVirtualClock:
    def test_sleep_advances_and_accumulates(self):
        clock = VirtualClock()
        start = clock.monotonic()
        clock.sleep(2.5)
        assert clock.monotonic() == pytest.approx(start + 2.5)
        assert clock.slept == pytest.approx(2.5)

    def test_advance_does_not_count_as_sleep(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.monotonic() == pytest.approx(10.0)
        assert clock.slept == pytest.approx(0.0)

    def test_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.sleep(-1.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestMonotonicClock:
    def test_monotonic_moves_forward(self):
        clock = MonotonicClock()
        a = clock.monotonic()
        b = clock.monotonic()
        assert b >= a

    def test_sleep_zero_is_instant(self):
        MonotonicClock().sleep(0.0)


class TestSeedDerivation:
    def test_matches_default_rng_spec(self):
        """The delay must come from default_rng([seed, round, attempt])."""
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=1.0, max_delay=1.0, seed=9)
        rng = np.random.default_rng([9, 5, 1])
        assert policy.delay(5, 1) == pytest.approx(1.0 + float(rng.random()))
