"""Degraded-data handling: NaN-aware Pearson, missing-data ingestion,
per-round masking, and the data-quality reports."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import CAD, CADConfig, DataQuality, build_tsg
from repro.timeseries import (
    MultivariateTimeSeries,
    pearson_matrix,
    pearson_matrix_masked,
)
from tests.conftest import correlated_values


class TestMaskedPearson:
    def test_clean_input_bit_identical_to_plain(self):
        window = np.random.default_rng(0).standard_normal((8, 120))
        assert np.array_equal(pearson_matrix_masked(window), pearson_matrix(window))

    def test_matches_pairwise_complete_corrcoef(self):
        rng = np.random.default_rng(1)
        window = rng.standard_normal((6, 200))
        window[rng.random(window.shape) < 0.1] = np.nan
        got = pearson_matrix_masked(window)
        n = window.shape[0]
        for i in range(n):
            for j in range(n):
                both = np.isfinite(window[i]) & np.isfinite(window[j])
                if i == j:
                    continue
                expected = np.corrcoef(window[i, both], window[j, both])[0, 1]
                assert got[i, j] == pytest.approx(expected, abs=1e-9)

    def test_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(2)
        window = rng.standard_normal((5, 100))
        window[rng.random(window.shape) < 0.2] = np.nan
        corr = pearson_matrix_masked(window)
        assert np.array_equal(corr, corr.T)
        assert (np.abs(corr) <= 1.0).all()

    def test_insufficient_overlap_gives_zero(self):
        window = np.full((3, 50), np.nan)
        window[0, :25] = np.arange(25, dtype=float)
        window[1, 25:] = np.arange(25, dtype=float)
        window[2, :] = np.sin(np.arange(50) / 3.0)
        corr = pearson_matrix_masked(window, min_overlap=2)
        assert corr[0, 1] == 0.0 and corr[1, 0] == 0.0
        assert corr[0, 2] != 0.0

    def test_fully_missing_sensor_is_dead(self):
        rng = np.random.default_rng(3)
        window = rng.standard_normal((4, 60))
        window[2, :] = np.nan
        corr = pearson_matrix_masked(window)
        assert (corr[2, :] == 0.0).all()
        assert (corr[:, 2] == 0.0).all()

    def test_constant_overlap_gives_zero(self):
        window = np.vstack([np.ones(40), np.arange(40, dtype=float)])
        window[0, 0] = np.nan  # force the masked path
        corr = pearson_matrix_masked(window)
        assert corr[0, 1] == 0.0

    def test_min_overlap_floor(self):
        rng = np.random.default_rng(4)
        window = rng.standard_normal((2, 30))
        window[0, 10:] = np.nan  # only 10 common points
        assert pearson_matrix_masked(window, min_overlap=10)[0, 1] != 0.0
        assert pearson_matrix_masked(window, min_overlap=11)[0, 1] == 0.0


class TestMissingIngestion:
    def test_nan_rejected_by_default(self):
        values = np.ones((3, 50))
        values[1, 4] = np.nan
        with pytest.raises(ValueError, match="allow_missing"):
            MultivariateTimeSeries(values)

    def test_nan_accepted_when_allowed(self):
        values = np.ones((3, 50))
        values[1, 4] = np.nan
        series = MultivariateTimeSeries(values, allow_missing=True)
        assert series.missing_mask()[1, 4]
        assert series.missing_fraction() == pytest.approx(1 / 150)

    def test_inf_always_rejected(self):
        values = np.ones((2, 20))
        values[0, 3] = np.inf
        with pytest.raises(ValueError, match="inf"):
            MultivariateTimeSeries(values, allow_missing=True)

    def test_allow_missing_propagates(self):
        values = np.ones((2, 40))
        values[0, 0] = np.nan
        series = MultivariateTimeSeries(values, allow_missing=True)
        assert series.slice_time(0, 20).allow_missing
        assert series.select_sensors([0]).allow_missing

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CADConfig(window=80, step=8, k=4, tau=0.5, theta=0.2, max_missing_fraction=1.0)
        with pytest.raises(ValueError):
            CADConfig(window=80, step=8, k=4, tau=0.5, theta=0.2, min_overlap_fraction=0.0)

    def test_min_overlap_scales_with_window(self):
        config = CADConfig(window=100, step=10, k=4, tau=0.5, theta=0.2,
                           min_overlap_fraction=0.25)
        assert config.min_overlap() == 25
        tiny = CADConfig(window=4, step=2, k=2, tau=0.5, theta=0.2,
                         min_overlap_fraction=0.25)
        assert tiny.min_overlap() == 2  # floor


class TestTSGWithMissing:
    def test_masked_tsg_isolates_dead_sensor(self):
        values = correlated_values(n_sensors=6, length=300, seed=8)
        window = values[:, :120].copy()
        window[4, :] = np.nan
        graph = build_tsg(window, k=2, tau=0.3, allow_missing=True)
        assert graph.degree(4) == 0

    def test_clean_window_same_graph_either_mode(self):
        values = correlated_values(n_sensors=8, length=200, seed=9)
        window = values[:, :150]
        clean = build_tsg(window, k=3, tau=0.4)
        degraded = build_tsg(window, k=3, tau=0.4, allow_missing=True)
        assert clean.edge_set() == degraded.edge_set()


class TestDetectorMasking:
    @pytest.fixture
    def degraded_config(self, toy_config):
        return replace(toy_config, allow_missing=True)

    def test_clean_detector_rejects_nan(self, toy_config, toy_values):
        values = toy_values[:, :400].copy()
        values[0, 100] = np.nan
        detector = CAD(toy_config, 12)
        with pytest.raises(ValueError, match="allow_missing"):
            detector.detect(MultivariateTimeSeries(values, allow_missing=True))

    def test_masked_sensor_reported(self, degraded_config, toy_values):
        values = toy_values[:, :600].copy()
        values[5, :] = np.nan  # sensor 5 dead for the whole run
        detector = CAD(degraded_config, 12)
        result = detector.detect(MultivariateTimeSeries(values, allow_missing=True))
        assert result.rounds
        for record in result.rounds:
            assert record.quality is not None
            assert 5 in record.quality.masked_sensors
            assert record.quality.degraded

    def test_masked_sensor_never_becomes_outlier(self, degraded_config, toy_values):
        """A dead sensor's own outlier status is frozen for the gap.

        Its community mates may still wobble (the k-NN graph genuinely
        rewires around an isolated vertex), but the masked sensor itself
        must never be reported as an outlier variation, and any extra
        alarms must stay confined to the gap.
        """
        gap = (400, 800)
        values = toy_values[:, :1200].copy()
        values[5, gap[0] : gap[1]] = np.nan
        detector = CAD(degraded_config, 12)
        result = detector.detect(MultivariateTimeSeries(values, allow_missing=True))

        assert all(5 not in record.outliers for record in result.rounds)
        abnormal = [record for record in result.rounds if record.abnormal]
        for record in abnormal:
            assert gap[0] <= record.stop and record.start <= gap[1]
        assert len(abnormal) <= len(result.rounds) // 10

    def test_quality_none_in_clean_mode(self, toy_config, toy_values):
        detector = CAD(toy_config, 12)
        result = detector.detect(MultivariateTimeSeries(toy_values[:, :400]))
        assert all(record.quality is None for record in result.rounds)

    def test_degraded_rounds_helper(self, degraded_config, toy_values):
        values = toy_values[:, :600].copy()
        values[2, 100:300] = np.nan
        detector = CAD(degraded_config, 12)
        result = detector.detect(MultivariateTimeSeries(values, allow_missing=True))
        degraded = result.degraded_rounds()
        assert degraded
        assert all(record.quality.degraded for record in degraded)
        assert len(degraded) < len(result.rounds)


class TestDataQuality:
    def test_validation(self):
        with pytest.raises(ValueError):
            DataQuality(missing_fraction=-0.1, masked_sensors=frozenset(), degraded=False)
        with pytest.raises(ValueError):
            DataQuality(missing_fraction=1.5, masked_sensors=frozenset(), degraded=True)

    def test_clean_quality(self):
        quality = DataQuality(
            missing_fraction=0.0, masked_sensors=frozenset(), degraded=False
        )
        assert not quality.degraded
        assert quality.masked_sensors == frozenset()


class TestQualityReport:
    def test_report_formats(self, toy_values):
        from repro.bench import format_quality_report

        config = CADConfig(
            window=80, step=8, k=4, tau=0.5, theta=0.2, allow_missing=True
        )
        values = toy_values[:, :600].copy()
        values[3, :] = np.nan
        detector = CAD(config, 12)
        result = detector.detect(MultivariateTimeSeries(values, allow_missing=True))
        report = format_quality_report(result.rounds)
        assert "data quality" in report
        assert "degraded" in report
        assert "3" in report  # the dead sensor shows up

    def test_report_on_clean_rounds(self, toy_config, toy_values):
        from repro.bench import format_quality_report

        detector = CAD(toy_config, 12)
        result = detector.detect(MultivariateTimeSeries(toy_values[:, :400]))
        report = format_quality_report(result.rounds)
        assert "data quality" in report
