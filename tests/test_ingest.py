"""The ingest frontier: envelopes, reorder/dedup/late/skew, chaos, resume.

The load-bearing claim throughout (mirroring the supervisor suite): messy
*delivery* must never change the answer.  Any arrival order within the
disorder horizon, any amount of redelivery, and any correctable clock skew
must yield ``RoundRecord`` sequences bit-identical to clean in-order
delivery.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import correlated_values
from repro.core import CADConfig, InvalidSampleError, StreamingCAD
from repro.ingest import (
    DeliveryChaosModel,
    FrontierConfig,
    IngestFrontier,
    SampleEnvelope,
    envelopes_from_matrix,
)
from repro.runtime import (
    EnvelopeValidationError,
    FrontierStateError,
    SequenceConflictError,
    StreamSupervisor,
    SupervisorConfig,
    VirtualClock,
)
from repro.timeseries import MultivariateTimeSeries

N_SENSORS = 8
CONFIG = CADConfig(window=48, step=8, allow_missing=True)


@pytest.fixture(scope="module")
def feed():
    values = correlated_values(n_sensors=N_SENSORS, length=1000, seed=21)
    history = MultivariateTimeSeries(values[:, :200])
    return history, values[:, 200:]


@pytest.fixture(scope="module")
def baseline(feed):
    history, live = feed
    stream = StreamingCAD(CONFIG, N_SENSORS)
    stream.warm_up(history)
    return stream.push_many(live)


def frontier_records(history, envelopes, frontier):
    """Feed envelopes through a frontier into a fresh StreamingCAD."""
    stream = StreamingCAD(CONFIG, frontier.config.n_sensors)
    stream.warm_up(history)
    records = []
    for envelope in envelopes:
        frontier.push(envelope)
        while (row := frontier.pop_ready()) is not None:
            record = stream.push(row)
            if record is not None:
                records.append(record)
    for row in frontier.drain():
        record = stream.push(row)
        if record is not None:
            records.append(record)
    return records


class TestEnvelopeValidation:
    def test_well_formed_envelope_coerces_numpy_scalars(self):
        envelope = SampleEnvelope(
            sensor=np.int64(3), seq=np.int64(7), timestamp=np.float64(7.0), value=1.5
        )
        assert envelope.sensor == 3 and isinstance(envelope.sensor, int)
        assert envelope.seq == 7 and isinstance(envelope.seq, int)
        assert envelope.timestamp == 7.0 and isinstance(envelope.timestamp, float)

    @pytest.mark.parametrize("field", ["sensor", "seq"])
    @pytest.mark.parametrize("bad", [-1, 1.5, True, "0", None])
    def test_bad_identity_fields_raise(self, field, bad):
        kwargs = dict(sensor=0, seq=0, timestamp=0.0, value=1.0)
        kwargs[field] = bad
        with pytest.raises(EnvelopeValidationError) as excinfo:
            SampleEnvelope(**kwargs)
        assert excinfo.value.field == field

    @pytest.mark.parametrize("bad", [np.inf, -np.inf, np.nan, "now", None])
    def test_bad_timestamp_raises(self, bad):
        with pytest.raises(EnvelopeValidationError) as excinfo:
            SampleEnvelope(sensor=0, seq=0, timestamp=bad, value=1.0)
        assert excinfo.value.field == "timestamp"

    @pytest.mark.parametrize("bad", [np.inf, -np.inf, "1.0", None, True])
    def test_bad_value_raises(self, bad):
        with pytest.raises(EnvelopeValidationError):
            SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=bad)

    def test_nan_value_is_the_sanctioned_missing_marker(self):
        envelope = SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=np.nan)
        assert np.isnan(envelope.value)


class TestDetectorDoorValidation:
    """Satellite: StreamingCAD.push rejects inf with a typed error."""

    @pytest.mark.parametrize("allow_missing", [False, True])
    def test_inf_raises_typed_error_in_every_mode(self, allow_missing):
        config = CADConfig(window=48, step=8, allow_missing=allow_missing)
        stream = StreamingCAD(config, 4)
        sample = np.array([0.0, 1.0, np.inf, 2.0])
        with pytest.raises(InvalidSampleError) as excinfo:
            stream.push(sample)
        assert excinfo.value.index == 2
        assert "inf" in str(excinfo.value)

    def test_nan_raises_only_outside_degraded_mode(self):
        strict = StreamingCAD(CADConfig(window=48, step=8), 4)
        sample = np.array([0.0, np.nan, 1.0, 2.0])
        with pytest.raises(InvalidSampleError) as excinfo:
            strict.push(sample)
        assert excinfo.value.index == 1
        degraded = StreamingCAD(CADConfig(window=48, step=8, allow_missing=True), 4)
        degraded.push(sample)  # NaN is data in degraded mode

    def test_invalid_sample_error_is_a_value_error(self):
        assert issubclass(InvalidSampleError, ValueError)


class TestFrontierBasics:
    def test_clean_in_order_passthrough(self):
        values = np.arange(12.0).reshape(3, 4)
        frontier = IngestFrontier(FrontierConfig(n_sensors=3, disorder_horizon=2))
        rows = frontier.extend(envelopes_from_matrix(values))
        rows.extend(frontier.drain())
        assert np.array_equal(np.column_stack(rows), values)
        stats = frontier.stats()
        assert stats.accepted == 12
        assert stats.rows_emitted == 4
        assert (
            stats.reordered,
            stats.deduped,
            stats.late_dropped,
            stats.nan_patched,
            stats.rows_dropped,
        ) == (0, 0, 0, 0, 0)

    def test_horizon_zero_never_flushes_a_mid_assembly_row(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=0))
        frontier.push(SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=1.0))
        assert frontier.pop_ready() is None, "row 0 is still assembling"
        frontier.push(SampleEnvelope(sensor=1, seq=0, timestamp=0.0, value=2.0))
        assert frontier.pop_ready() is None
        frontier.push(SampleEnvelope(sensor=0, seq=1, timestamp=1.0, value=3.0))
        row = frontier.pop_ready()
        assert np.array_equal(row, [1.0, 2.0])
        assert frontier.stats().nan_patched == 0

    def test_reorder_within_horizon_is_lossless(self, feed, baseline):
        history, live = feed
        envelopes = list(envelopes_from_matrix(live))
        rng = np.random.default_rng(5)
        keys = np.array([e.seq for e in envelopes]) + rng.integers(
            0, 7, size=len(envelopes)
        )
        shuffled = [envelopes[i] for i in np.argsort(keys, kind="stable")]
        frontier = IngestFrontier(
            FrontierConfig(n_sensors=N_SENSORS, disorder_horizon=8)
        )
        records = frontier_records(history, shuffled, frontier)
        assert records == baseline
        assert frontier.stats().reordered > 0

    def test_redelivery_dedups_idempotently(self):
        values = np.arange(8.0).reshape(2, 4)
        envelopes = list(envelopes_from_matrix(values))
        # Horizon wider than the stream: every redelivery hits a still-
        # pending row and must dedup (flushed rows would count late instead).
        frontier = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=8))
        rows = frontier.extend(envelopes + envelopes[2:5])
        rows.extend(frontier.drain())
        assert np.array_equal(np.column_stack(rows), values)
        assert frontier.stats().deduped == 3
        assert frontier.stats().late_dropped == 0

    def test_conflicting_sequence_numbers_raise(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=4))
        frontier.push(SampleEnvelope(sensor=0, seq=5, timestamp=5.0, value=1.0))
        with pytest.raises(SequenceConflictError) as excinfo:
            # Same cell (sensor 0, grid row 5), different producer seq.
            frontier.push(SampleEnvelope(sensor=0, seq=6, timestamp=5.4, value=2.0))
        assert excinfo.value.sensor == 0
        assert (excinfo.value.held_seq, excinfo.value.new_seq) == (5, 6)

    def test_dedup_off_last_write_wins(self):
        frontier = IngestFrontier(
            FrontierConfig(n_sensors=1, disorder_horizon=1, dedup=False)
        )
        frontier.push(SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=1.0))
        frontier.push(SampleEnvelope(sensor=0, seq=1, timestamp=0.4, value=9.0))
        rows = list(frontier.drain())
        assert rows[0][0] == 9.0
        assert frontier.stats().deduped == 0

    def test_late_envelope_is_counted_not_raised(self):
        values = np.arange(10.0).reshape(1, 10)
        frontier = IngestFrontier(FrontierConfig(n_sensors=1, disorder_horizon=2))
        frontier.extend(envelopes_from_matrix(values))
        flushed = frontier.next_emit
        assert flushed > 0
        frontier.push(
            SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=123.0)
        )
        assert frontier.stats().late_dropped == 1

    def test_out_of_range_sensor_and_pre_epoch_timestamp_raise(self):
        frontier = IngestFrontier(
            FrontierConfig(n_sensors=2, disorder_horizon=2, epoch=100.0)
        )
        with pytest.raises(EnvelopeValidationError, match="sensor"):
            frontier.push(SampleEnvelope(sensor=2, seq=0, timestamp=100.0, value=0.0))
        with pytest.raises(EnvelopeValidationError, match="epoch"):
            frontier.push(SampleEnvelope(sensor=0, seq=0, timestamp=50.0, value=0.0))

    def test_non_envelope_push_raises(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=1))
        with pytest.raises(EnvelopeValidationError):
            frontier.push((0, 0, 0.0, 1.0))

    def test_watermark_lag_and_pending_rows(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=1, disorder_horizon=4))
        for t in range(6):
            frontier.push(
                SampleEnvelope(sensor=0, seq=t, timestamp=float(t), value=float(t))
            )
        stats = frontier.stats()
        assert stats.pending_rows == 6
        assert stats.watermark_lag == 6
        assert frontier.pop_ready() is not None  # rows 0..1 are past watermark
        assert frontier.stats().watermark_lag == 5


class TestLatePolicies:
    def _delayed_beyond_horizon(self, values):
        """Deliver sensor 1's reading of row 2 after its row has flushed."""
        held = []
        envelopes = []
        for envelope in envelopes_from_matrix(values):
            if envelope.sensor == 1 and envelope.seq == 2:
                held.append(envelope)
            else:
                envelopes.append(envelope)
        return envelopes + held

    def test_nan_patch_preserves_the_grid(self):
        values = np.arange(20.0).reshape(2, 10)
        frontier = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=2))
        rows = frontier.extend(self._delayed_beyond_horizon(values))
        rows.extend(frontier.drain())
        out = np.column_stack(rows)
        assert out.shape == values.shape
        assert np.isnan(out[1, 2])
        mask = ~np.isnan(out)
        assert np.array_equal(out[mask], values[mask])
        stats = frontier.stats()
        assert stats.nan_patched == 1
        assert stats.late_dropped == 1
        assert stats.rows_dropped == 0

    def test_drop_skips_incomplete_rows(self):
        values = np.arange(20.0).reshape(2, 10)
        frontier = IngestFrontier(
            FrontierConfig(n_sensors=2, disorder_horizon=2, late_policy="drop")
        )
        rows = frontier.extend(self._delayed_beyond_horizon(values))
        rows.extend(frontier.drain())
        out = np.column_stack(rows)
        assert out.shape == (2, 9)
        assert np.array_equal(out, np.delete(values, 2, axis=1))
        stats = frontier.stats()
        assert stats.rows_dropped == 1
        assert stats.nan_patched == 0

    def test_wholly_missing_row_becomes_all_nan_gap(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=0))
        frontier.push(SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=1.0))
        frontier.push(SampleEnvelope(sensor=1, seq=0, timestamp=0.0, value=2.0))
        # Tick 1 never happens; tick 2 arrives (a real transmission gap).
        frontier.push(SampleEnvelope(sensor=0, seq=2, timestamp=2.0, value=3.0))
        frontier.push(SampleEnvelope(sensor=1, seq=2, timestamp=2.0, value=4.0))
        rows = list(frontier.drain())
        assert len(rows) == 3, "the gap row must keep its grid slot"
        assert np.all(np.isnan(rows[1]))
        assert frontier.stats().nan_patched == 2


class TestSkewAlignment:
    def test_sub_half_period_skew_is_absorbed_by_snapping(self, feed, baseline):
        history, live = feed
        skews = np.linspace(-0.4, 0.4, N_SENSORS)
        envelopes = envelopes_from_matrix(live, skew=skews)
        frontier = IngestFrontier(
            FrontierConfig(n_sensors=N_SENSORS, disorder_horizon=4)
        )
        assert frontier_records(history, envelopes, frontier) == baseline

    def test_large_skew_needs_correction_and_gets_it(self, feed, baseline):
        history, live = feed
        # Positive offsets only: uncorrected they shift rows late (visible
        # corruption); negative ones would map early ticks before the epoch.
        skews = tuple(float(3 * s) for s in range(N_SENSORS))
        envelopes = list(envelopes_from_matrix(live, skew=skews))
        corrected = IngestFrontier(
            FrontierConfig(
                n_sensors=N_SENSORS, disorder_horizon=8, skew=skews
            )
        )
        assert frontier_records(history, envelopes, corrected) == baseline
        uncorrected = IngestFrontier(
            FrontierConfig(n_sensors=N_SENSORS, disorder_horizon=8)
        )
        assert (
            frontier_records(history, envelopes, uncorrected) != baseline
        ), "multi-period skew must visibly corrupt the grid when uncorrected"


class TestFrontierConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(n_sensors=0),
            dict(n_sensors=2, disorder_horizon=-1),
            dict(n_sensors=2, late_policy="defer"),
            dict(n_sensors=2, period=0.0),
            dict(n_sensors=2, period=np.inf),
            dict(n_sensors=2, epoch=np.nan),
            dict(n_sensors=2, skew=(0.0,)),
            dict(n_sensors=2, skew=(0.0, np.inf)),
        ],
    )
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ValueError):
            FrontierConfig(**kwargs)


class TestStateRoundtrip:
    def _partial_frontier(self):
        values = np.arange(30.0).reshape(3, 10)
        frontier = IngestFrontier(FrontierConfig(n_sensors=3, disorder_horizon=4))
        envelopes = list(envelopes_from_matrix(values))
        for envelope in envelopes[:17]:  # mid-row cut: row 5 half-assembled
            frontier.push(envelope)
        while frontier.pop_ready() is not None:
            pass
        return frontier, envelopes, values

    def test_state_survives_json_and_resumes_identically(self):
        frontier, envelopes, values = self._partial_frontier()
        state = json.loads(json.dumps(frontier.to_state()))
        resumed = IngestFrontier(FrontierConfig(n_sensors=3, disorder_horizon=4))
        resumed.restore_state(state)
        assert resumed.next_emit == frontier.next_emit
        assert resumed.stats() == frontier.stats()
        # Re-send the whole stream: flushed rows late-drop, pending dedup.
        rows = resumed.extend(envelopes)
        rows.extend(resumed.drain())
        emitted = np.column_stack(rows)
        assert np.array_equal(emitted, values[:, frontier.next_emit :])

    def test_nan_cells_roundtrip_as_null(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=4))
        frontier.push(SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=np.nan))
        payload = json.dumps(frontier.to_state())
        assert "NaN" not in payload, "state must be strict-JSON safe"
        resumed = IngestFrontier(FrontierConfig(n_sensors=2, disorder_horizon=4))
        resumed.restore_state(json.loads(payload))
        restored_row = list(resumed.drain())[0]
        assert np.isnan(restored_row[0]), "explicit NaN reading must survive"

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda s: {**s, "format": "something-else"},
            lambda s: {**s, "version": 99},
            lambda s: {**s, "next_emit": "soon"},
            lambda s: {**s, "pending": {"0": [1.0]}},  # wrong width
            lambda s: {**s, "pending_seq": {}},  # disagrees with pending
            lambda s: {**s, "next_emit": 10_000},  # pending behind frontier
        ],
    )
    def test_malformed_state_raises_typed_error(self, corrupt):
        frontier, _, _ = self._partial_frontier()
        state = json.loads(json.dumps(frontier.to_state()))
        fresh = IngestFrontier(FrontierConfig(n_sensors=3, disorder_horizon=4))
        with pytest.raises(FrontierStateError):
            fresh.restore_state(corrupt(state))


class TestDeliveryChaosModel:
    def test_schedule_is_deterministic(self):
        values = np.arange(40.0).reshape(4, 10)
        envelopes = list(envelopes_from_matrix(values))
        chaos = DeliveryChaosModel(
            seed=3,
            out_of_order_rate=0.5,
            max_disorder=4,
            redelivery_rate=0.3,
            redelivery_max_delay=8,
            skew_magnitude=0.3,
        )
        first = chaos.deliver(envelopes)
        second = chaos.deliver(envelopes)
        assert first == second
        assert len(first) > len(envelopes), "redelivery must duplicate"

    def test_clean_model_is_identity(self):
        values = np.arange(20.0).reshape(2, 10)
        envelopes = list(envelopes_from_matrix(values))
        chaos = DeliveryChaosModel(seed=0)
        assert chaos.is_clean
        assert chaos.deliver(envelopes) == envelopes

    def test_skews_are_bounded_and_per_sensor_stable(self):
        chaos = DeliveryChaosModel(seed=9, skew_magnitude=0.4)
        skews = chaos.skews(16)
        assert all(abs(s) <= 0.4 for s in skews)
        assert skews == chaos.skews(16)
        assert len(set(skews)) > 1

    def test_delivery_preserves_payload_multiset(self):
        values = np.arange(40.0).reshape(4, 10)
        envelopes = list(envelopes_from_matrix(values))
        chaos = DeliveryChaosModel(seed=3, out_of_order_rate=0.5, max_disorder=4)
        delivered = chaos.deliver(envelopes)
        key = lambda e: (e.sensor, e.seq, e.value)  # noqa: E731
        assert sorted(map(key, delivered)) == sorted(map(key, envelopes))


class TestSupervisedIngest:
    def make(self, frontier, **kwargs):
        kwargs.setdefault("clock", VirtualClock())
        return StreamSupervisor(CONFIG, N_SENSORS, frontier=frontier, **kwargs)

    def test_chaotic_delivery_is_bit_identical_and_counted(self, feed, baseline):
        history, live = feed
        chaos = DeliveryChaosModel(
            seed=13,
            out_of_order_rate=0.3,
            max_disorder=8,
            redelivery_rate=0.1,
            redelivery_max_delay=40,
            skew_magnitude=0.4,
        )
        frontier = IngestFrontier(
            FrontierConfig(
                n_sensors=N_SENSORS,
                disorder_horizon=8,
                skew=chaos.skews(N_SENSORS),
            )
        )
        supervisor = self.make(frontier)
        supervisor.warm_up(history)
        records = supervisor.ingest_many(
            chaos.deliver(envelopes_from_matrix(live))
        )
        records.extend(supervisor.finish())
        assert records == baseline
        health = supervisor.health()
        assert health.samples_reordered > 0
        assert health.samples_deduped > 0
        assert health.samples_late_dropped > 0
        assert health.cells_nan_patched == 0, "no original may be lost"

    def test_health_surfaces_queue_policy_and_frontier_counters(self, feed):
        history, live = feed
        frontier = IngestFrontier(
            FrontierConfig(n_sensors=N_SENSORS, disorder_horizon=4)
        )
        supervisor = self.make(
            frontier,
            supervisor=SupervisorConfig(queue_capacity=512, shed_policy="drop_newest"),
        )
        supervisor.warm_up(history)
        supervisor.ingest_many(envelopes_from_matrix(live[:, :100]))
        payload = supervisor.health().to_dict()
        assert payload["queue_policy"] == "drop_newest"
        assert payload["queue_capacity"] == 512
        assert payload["watermark_lag"] > 0, "tail rows still inside the horizon"
        for counter in (
            "samples_reordered",
            "samples_deduped",
            "samples_late_dropped",
            "cells_nan_patched",
            "rows_dropped",
        ):
            assert payload[counter] == 0

    def test_frontier_width_must_match(self):
        frontier = IngestFrontier(FrontierConfig(n_sensors=N_SENSORS + 1))
        with pytest.raises(ValueError, match="sensor"):
            self.make(frontier)

    def test_nan_patch_requires_allow_missing(self):
        strict = CADConfig(window=48, step=8, allow_missing=False)
        frontier = IngestFrontier(FrontierConfig(n_sensors=N_SENSORS))
        from repro.runtime import BreakerPolicy

        with pytest.raises(ValueError, match="allow_missing"):
            StreamSupervisor(
                strict,
                N_SENSORS,
                supervisor=SupervisorConfig(
                    breaker=BreakerPolicy(failure_threshold=0)
                ),
                frontier=frontier,
            )

    def test_envelope_api_needs_a_frontier(self):
        supervisor = StreamSupervisor(CONFIG, N_SENSORS, clock=VirtualClock())
        with pytest.raises(ValueError, match="frontier"):
            supervisor.ingest(
                SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=1.0)
            )
        assert supervisor.finish() == []

    def test_kill_mid_reorder_resume_is_bit_identical(
        self, feed, baseline, tmp_path
    ):
        """Satellite: process death while the reorder buffer is non-empty.

        The checkpoint sidecar carries the frontier state; on resume the
        source re-sends the *entire* delivery schedule and the frontier's
        dedup/late accounting absorbs everything already processed.
        """
        history, live = feed
        chaos = DeliveryChaosModel(seed=4, out_of_order_rate=0.4, max_disorder=8)
        delivered = chaos.deliver(envelopes_from_matrix(live))
        sup_config = SupervisorConfig(checkpoint_every=5, keep_checkpoints=3)

        def make(resume):
            return StreamSupervisor(
                CONFIG,
                N_SENSORS,
                supervisor=sup_config,
                checkpoint_dir=tmp_path,
                clock=VirtualClock(),
                frontier=IngestFrontier(
                    FrontierConfig(n_sensors=N_SENSORS, disorder_horizon=8)
                ),
                resume=resume,
            )

        first = make(resume=False)
        first.warm_up(history)
        kill_at = (len(delivered) * 2) // 3
        before = first.ingest_many(delivered[:kill_at])
        assert first.frontier.stats().pending_rows > 0, "must die mid-reorder"
        del first  # process death

        resumed = make(resume=True)
        assert resumed.frontier.next_emit > 0, "frontier state must be adopted"
        after = resumed.ingest_many(delivered)  # full redelivery
        after.extend(resumed.finish())

        merged = {}
        for record in [*before, *after]:
            if record.index in merged:
                assert merged[record.index] == record, "re-emitted round differs"
            merged[record.index] = record
        assert [merged[r.index] for r in baseline] == baseline
        assert resumed.health().samples_late_dropped > 0


@settings(max_examples=15, deadline=None)
@given(
    delay_seed=st.integers(min_value=0, max_value=2**31 - 1),
    duplicate_every=st.integers(min_value=3, max_value=50),
)
def test_any_delivery_within_horizon_is_bit_identical(delay_seed, duplicate_every):
    """Property (ISSUE satellite): permute arrivals within the horizon and
    duplicate a slice of envelopes — the RoundRecords are bit-identical to
    sorted, exactly-once delivery."""
    horizon = 6
    values = correlated_values(n_sensors=4, length=420, seed=17)
    history = MultivariateTimeSeries(values[:, :100])
    live = values[:, 100:]
    config = CADConfig(window=48, step=8, allow_missing=True)

    stream = StreamingCAD(config, 4)
    stream.warm_up(history)
    expected = stream.push_many(live)

    envelopes = list(envelopes_from_matrix(live))
    rng = np.random.default_rng(delay_seed)
    keys = np.array([e.seq for e in envelopes]) + rng.integers(
        0, horizon + 1, size=len(envelopes)
    )
    shuffled = [envelopes[i] for i in np.argsort(keys, kind="stable")]
    shuffled.extend(shuffled[::duplicate_every])  # tail-end redelivery burst

    frontier = IngestFrontier(FrontierConfig(n_sensors=4, disorder_horizon=horizon))
    target = StreamingCAD(config, 4)
    target.warm_up(history)
    records = []
    for row in frontier.extend(shuffled):
        record = target.push(row)
        if record is not None:
            records.append(record)
    for row in frontier.drain():
        record = target.push(row)
        if record is not None:
            records.append(record)
    assert records == expected
    assert frontier.stats().deduped + frontier.stats().late_dropped > 0


class TestEnvelopeTenancy:
    """The fleet's ``tenant`` field: implicit default, validation, stamping."""

    def test_default_is_the_implicit_single_tenant(self):
        envelope = SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=1.0)
        assert envelope.tenant == ""

    def test_explicit_tenant_is_preserved(self):
        envelope = SampleEnvelope(
            sensor=0, seq=0, timestamp=0.0, value=1.0, tenant="acme-07"
        )
        assert envelope.tenant == "acme-07"

    @pytest.mark.parametrize("bad", [0, None, b"t", 1.5])
    def test_non_string_tenant_raises(self, bad):
        with pytest.raises(EnvelopeValidationError) as excinfo:
            SampleEnvelope(sensor=0, seq=0, timestamp=0.0, value=1.0, tenant=bad)
        assert excinfo.value.field == "tenant"

    def test_envelopes_from_matrix_stamps_every_envelope(self):
        values = correlated_values(n_sensors=3, length=4, seed=9)
        stamped = list(envelopes_from_matrix(values, tenant="t-1"))
        assert stamped and all(e.tenant == "t-1" for e in stamped)
        implicit = list(envelopes_from_matrix(values))
        assert all(e.tenant == "" for e in implicit)
        # tenancy is metadata: the payload stream is otherwise unchanged
        assert [(e.sensor, e.seq, e.value) for e in stamped] == [
            (e.sensor, e.seq, e.value) for e in implicit
        ]
