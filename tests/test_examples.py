"""Smoke tests for the example scripts.

Every example must at least compile; the quickstart (the one README leads
with) is executed end-to-end against its real dataset.
"""

import importlib.util
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


def _load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {
        "quickstart",
        "streaming_detection",
        "assembly_line_monitoring",
        "method_comparison",
        "parameter_tuning",
    } <= names


def test_quickstart_runs_end_to_end(capsys):
    module = _load_module(EXAMPLES_DIR / "quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "detected" in out
    assert "F1 after Point Adjustment" in out
