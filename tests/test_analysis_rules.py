"""Per-rule fixtures for repro.analysis: every rule has a positive case
(flagged), a negative case (clean), and a pragma-suppressed case."""

import textwrap

import pytest

from repro.analysis import ALL_RULES, RULES_BY_ID, analyze_source

SRC = "src/repro/core/example.py"  # in scope for every path-scoped rule


def lint(source, relpath=SRC):
    return analyze_source(textwrap.dedent(source), relpath)


def rules_fired(source, relpath=SRC):
    return {v.rule for v in lint(source, relpath)}


class TestRegistry:
    def test_eight_rules_registered(self):
        assert len(ALL_RULES) >= 8
        assert {f"R{i}" for i in range(1, 9)} <= set(RULES_BY_ID)

    def test_rules_have_rationales(self):
        for rule in ALL_RULES:
            assert rule.rule_id and rule.title and rule.rationale


class TestR1UnorderedIteration:
    def test_for_loop_over_set_flagged(self):
        assert "R1" in rules_fired(
            """
            def f(graph):
                vertices = {1, 2, 3}
                for v in vertices:
                    graph.visit(v)
            """
        )

    def test_list_of_set_flagged(self):
        assert "R1" in rules_fired("order = list({3, 1, 2})\n")

    def test_dict_comprehension_over_set_call_flagged(self):
        assert "R1" in rules_fired(
            "labels = {x: 0 for x in set(data)}\n"
        )

    def test_sorted_iteration_clean(self):
        assert "R1" not in rules_fired(
            """
            def f(graph):
                vertices = {1, 2, 3}
                for v in sorted(vertices):
                    graph.visit(v)
            """
        )

    def test_order_insensitive_consumers_clean(self):
        assert "R1" not in rules_fired(
            """
            s = {1, 2, 3}
            n = len(s)
            top = max(s)
            total = sum(s)
            ordered = sorted(x + 1 for x in s)
            """
        )

    def test_membership_and_set_algebra_clean(self):
        assert "R1" not in rules_fired(
            """
            def f(a, b):
                merged = set(a) | set(b)
                return 3 in merged
            """
        )

    def test_noqa_suppresses(self):
        assert "R1" not in rules_fired(
            """
            def f(graph):
                vertices = {1, 2, 3}
                for v in vertices:  # repro: noqa[R1] visit order is irrelevant here
                    graph.mark(v)
            """
        )

    def test_tests_are_out_of_scope(self):
        source = "for v in {1, 2}:\n    print(v)\n"
        assert "R1" in rules_fired(source)
        assert "R1" not in rules_fired(source, "tests/test_example.py")


class TestR2FloatEquality:
    def test_float_literal_comparison_flagged(self):
        assert "R2" in rules_fired("ok = tau == 0.5\n")

    def test_float_call_comparison_flagged(self):
        assert "R2" in rules_fired("import numpy as np\nbad = np.mean(x) == y\n")

    def test_inferred_float_array_comparison_flagged(self):
        assert "R2" in rules_fired(
            """
            import numpy as np
            def f(raw):
                values = np.array(raw, dtype=np.float64)
                return values[0] != values[1]
            """
        )

    def test_int_comparison_clean(self):
        assert "R2" not in rules_fired("done = count == 3\nother = n != -1\n")

    def test_shape_comparison_clean(self):
        assert "R2" not in rules_fired("ok = a.shape == b.shape\n")

    def test_inequality_bound_clean(self):
        assert "R2" not in rules_fired("small = abs(a - b) <= 1e-9\n")

    def test_noqa_suppresses(self):
        assert "R2" not in rules_fired(
            "exact = x == 0.5  # repro: noqa[R2] sentinel compare\n"
        )

    def test_tests_are_out_of_scope(self):
        assert "R2" not in rules_fired(
            "assert value == 0.5\n", "tests/test_thing.py"
        )


class TestR3ModuleRandomState:
    def test_stdlib_random_import_flagged(self):
        assert "R3" in rules_fired("import random\n")

    def test_np_random_legacy_call_flagged(self):
        assert "R3" in rules_fired("import numpy as np\nnp.random.seed(0)\n")
        assert "R3" in rules_fired("import numpy as np\nx = np.random.rand(3)\n")

    def test_from_numpy_random_import_flagged(self):
        assert "R3" in rules_fired("from numpy.random import rand\n")

    def test_seeded_generator_clean(self):
        assert "R3" not in rules_fired(
            """
            import numpy as np
            def f(seed: int):
                rng = np.random.default_rng(seed)
                return rng.normal(size=3)
            """
        )

    def test_generator_annotation_clean(self):
        assert "R3" not in rules_fired(
            """
            import numpy as np
            def f(rng: np.random.Generator):
                return rng.integers(0, 10)
            """
        )

    def test_noqa_suppresses(self):
        assert "R3" not in rules_fired(
            "import random  # repro: noqa[R3] legacy shim\n"
        )


class TestR4WallClock:
    def test_time_time_flagged(self):
        assert "R4" in rules_fired("import time\nstamp = time.time()\n")

    def test_datetime_now_flagged(self):
        assert "R4" in rules_fired(
            "import datetime\nnow = datetime.datetime.now()\n"
        )

    def test_perf_counter_allowed(self):
        assert "R4" not in rules_fired("import time\nt0 = time.perf_counter()\n")

    def test_out_of_scope_module_clean(self):
        assert "R4" not in rules_fired(
            "import time\nstamp = time.time()\n", "src/repro/bench/example.py"
        )

    def test_noqa_suppresses(self):
        assert "R4" not in rules_fired(
            "import time\nstamp = time.time()  # repro: noqa[R4] log line only\n"
        )


class TestR5ParallelDispatch:
    def test_lambda_submit_flagged(self):
        assert "R5" in rules_fired(
            """
            def run(pool, xs):
                return [pool.submit(lambda x: x + 1, x) for x in xs]
            """
        )

    def test_nested_function_flagged(self):
        assert "R5" in rules_fired(
            """
            def run(pool, xs):
                def work(x):
                    return x + 1
                return [pool.submit(work, x) for x in xs]
            """
        )

    def test_bound_method_flagged(self):
        assert "R5" in rules_fired(
            """
            class Runner:
                def go(self, pool, xs):
                    return [pool.submit(self.work, x) for x in xs]
            """
        )

    def test_worker_reading_mutable_global_flagged(self):
        assert "R5" in rules_fired(
            """
            _CACHE = {}

            def work(x):
                return _CACHE.get(x, x)

            def run(pool, xs):
                return [pool.submit(work, x) for x in xs]
            """
        )

    def test_worker_declaring_global_flagged(self):
        assert "R5" in rules_fired(
            """
            _TOTAL = 0

            def work(x):
                global _TOTAL
                _TOTAL += x
                return _TOTAL

            def run(pool, xs):
                return [pool.submit(work, x) for x in xs]
            """
        )

    def test_module_level_pure_worker_clean(self):
        assert "R5" not in rules_fired(
            """
            _LIMIT = 16

            def work(config, x):
                return min(x + config.offset, _LIMIT)

            def run(pool, config, xs):
                return [pool.submit(work, config, x) for x in xs]
            """
        )

    def test_executor_map_flagged(self):
        assert "R5" in rules_fired(
            """
            def run(executor, xs):
                return list(executor.map(lambda x: x * 2, xs))
            """
        )

    def test_plain_map_builtin_ignored(self):
        assert "R5" not in rules_fired(
            "doubled = list(map(lambda x: x * 2, [1, 2]))\n"
        )

    def test_partial_of_lambda_flagged(self):
        assert "R5" in rules_fired(
            """
            from functools import partial

            def run(pool, xs):
                return [pool.submit(partial(lambda x, y: x + y, 1), x) for x in xs]
            """
        )

    def test_noqa_suppresses(self):
        assert "R5" not in rules_fired(
            """
            def run(pool, xs):
                return [pool.submit(lambda x: x, x) for x in xs]  # repro: noqa[R5] thread pool only
            """
        )


class TestR6MutableDefaults:
    def test_list_default_flagged(self):
        assert "R6" in rules_fired("def f(acc=[]):\n    return acc\n")

    def test_dict_call_default_flagged(self):
        assert "R6" in rules_fired("def f(cache=dict()):\n    return cache\n")

    def test_kwonly_set_default_flagged(self):
        assert "R6" in rules_fired("def f(*, seen={1}):\n    return seen\n")

    def test_none_and_tuple_defaults_clean(self):
        assert "R6" not in rules_fired(
            "def f(acc=None, dims=(1, 2), name='x'):\n    return acc\n"
        )

    def test_applies_in_tests_too(self):
        assert "R6" in rules_fired(
            "def helper(acc=[]):\n    return acc\n", "tests/test_helper.py"
        )

    def test_noqa_suppresses(self):
        assert "R6" not in rules_fired(
            "def f(acc=[]):  # repro: noqa[R6] module-lifetime accumulator\n    return acc\n"
        )


class TestR7SwallowedExceptions:
    CHECKPOINT = "src/repro/core/checkpoint_helpers.py"

    def test_bare_except_flagged_everywhere_in_src(self):
        assert "R7" in rules_fired(
            """
            def f():
                try:
                    work()
                except:
                    raise
            """
        )

    def test_swallowed_broad_handler_flagged_on_state_path(self):
        assert "R7" in rules_fired(
            """
            def load(path):
                try:
                    return read(path)
                except Exception:
                    pass
            """,
            self.CHECKPOINT,
        )

    def test_swallowed_broad_handler_allowed_off_state_path(self):
        source = """
        def probe():
            try:
                return peek()
            except Exception:
                pass
        """
        assert "R7" not in rules_fired(source, "src/repro/evaluation/probe.py")

    def test_narrow_handler_clean_on_state_path(self):
        assert "R7" not in rules_fired(
            """
            def load(path):
                try:
                    return read(path)
                except FileNotFoundError:
                    return None
            """,
            self.CHECKPOINT,
        )

    def test_handled_broad_exception_clean(self):
        assert "R7" not in rules_fired(
            """
            def load(path):
                try:
                    return read(path)
                except Exception as error:
                    raise ValueError(f"corrupt checkpoint: {error}")
            """,
            self.CHECKPOINT,
        )

    def test_noqa_suppresses(self):
        assert "R7" not in rules_fired(
            """
            def f():
                try:
                    work()
                except:  # repro: noqa[R7] REPL convenience wrapper
                    raise
            """
        )


class TestR8NanDiscipline:
    PIPELINE = "src/repro/core/pipeline.py"

    def test_np_mean_flagged_in_degraded_module(self):
        assert "R8" in rules_fired(
            "import numpy as np\nmu = np.mean(window)\n", self.PIPELINE
        )

    def test_np_std_flagged(self):
        assert "R8" in rules_fired(
            "import numpy as np\ns = np.std(corr)\n", self.PIPELINE
        )

    def test_nan_aware_variant_clean(self):
        assert "R8" not in rules_fired(
            "import numpy as np\nmu = np.nanmean(window)\n", self.PIPELINE
        )

    def test_out_of_scope_module_clean(self):
        assert "R8" not in rules_fired(
            "import numpy as np\nmu = np.mean(window)\n",
            "src/repro/evaluation/range_metrics.py",
        )

    def test_noqa_with_reason_suppresses(self):
        assert "R8" not in rules_fired(
            "import numpy as np\n"
            "mu = np.mean(window)  # repro: noqa[R8] window validated finite above\n",
            self.PIPELINE,
        )


class TestR9IngestClock:
    FRONTIER = "src/repro/ingest/frontier.py"

    def test_wall_clock_flagged_in_ingest(self):
        assert "R9" in rules_fired(
            "import time\nnow = time.time()\n", self.FRONTIER
        )

    def test_monotonic_clock_flagged_in_ingest(self):
        assert "R9" in rules_fired(
            "import time\nmark = time.perf_counter()\n", self.FRONTIER
        )

    def test_naive_fromtimestamp_flagged(self):
        assert "R9" in rules_fired(
            "from datetime import datetime\n"
            "stamp = datetime.fromtimestamp(ts)\n",
            self.FRONTIER,
        )

    def test_utcfromtimestamp_always_flagged(self):
        assert "R9" in rules_fired(
            "from datetime import datetime, timezone\n"
            "stamp = datetime.utcfromtimestamp(ts)\n",
            self.FRONTIER,
        )

    def test_aware_fromtimestamp_clean(self):
        assert "R9" not in rules_fired(
            "from datetime import datetime, timezone\n"
            "stamp = datetime.fromtimestamp(ts, tz=timezone.utc)\n",
            self.FRONTIER,
        )

    def test_outside_ingest_clean(self):
        assert "R9" not in rules_fired(
            "import time\nmark = time.perf_counter()\n",
            "src/repro/bench/timing.py",
        )

    def test_fleet_scheduler_in_scope(self):
        # The fleet scheduler inherits the ingest clock contract: cycle
        # ordering and fairness must be replayable, never wall-clock-driven.
        assert "R9" in rules_fired(
            "import time\nnow = time.time()\n",
            "src/repro/fleet/scheduler.py",
        )
        assert "R9" in rules_fired(
            "import time\nmark = time.monotonic()\n",
            "src/repro/fleet/manager.py",
        )

    def test_noqa_with_reason_suppresses(self):
        assert "R9" not in rules_fired(
            "import time\n"
            "t = time.monotonic()  # repro: noqa[R9] diagnostics only\n",
            self.FRONTIER,
        )


class TestR10SharedMemoryLifecycle:
    def test_attach_without_finally_close_flagged(self):
        assert "R10" in rules_fired(
            """
            from multiprocessing import shared_memory

            def read(name):
                shm = shared_memory.SharedMemory(name=name)
                value = float(shm.buf[0])
                shm.close()
                return value
            """
        )

    def test_create_without_finally_unlink_flagged(self):
        assert "R10" in rules_fired(
            """
            from multiprocessing import shared_memory

            def stage(n):
                shm = shared_memory.SharedMemory(name="slot", create=True, size=n)
                try:
                    shm.buf[0] = 1
                finally:
                    shm.close()
            """
        )

    def test_close_and_unlink_in_finally_clean(self):
        assert "R10" not in rules_fired(
            """
            from multiprocessing import shared_memory

            def stage(n):
                shm = shared_memory.SharedMemory(name="slot", create=True, size=n)
                try:
                    shm.buf[0] = 1
                finally:
                    try:
                        shm.close()
                    finally:
                        shm.unlink()
            """
        )

    def test_attach_with_finally_close_clean(self):
        assert "R10" not in rules_fired(
            """
            from multiprocessing import shared_memory

            def read(name):
                shm = shared_memory.SharedMemory(name=name)
                try:
                    return float(shm.buf[0])
                finally:
                    shm.close()
            """
        )

    def test_ownership_transfer_clean(self):
        # Stored into a container: lifecycle belongs to the container's
        # owner (e.g. a pool shutdown path), not this scope.
        assert "R10" not in rules_fired(
            """
            from multiprocessing import shared_memory

            def attach(slots, name):
                shm = shared_memory.SharedMemory(name=name)
                slots[name] = shm
            """
        )

    def test_buffer_view_is_not_an_escape(self):
        # Passing shm.buf out does NOT transfer the close obligation.
        assert "R10" in rules_fired(
            """
            import numpy as np
            from multiprocessing import shared_memory

            def read(name, shape):
                shm = shared_memory.SharedMemory(name=name)
                arr = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
                total = float(arr.sum())
                del arr
                shm.close()
                return total
            """
        )

    def test_tests_are_out_of_scope(self):
        assert "R10" not in rules_fired(
            "from multiprocessing import shared_memory\n"
            "def f(n):\n"
            "    shm = shared_memory.SharedMemory(name=n)\n"
            "    shm.close()\n",
            "tests/test_pool.py",
        )

    def test_noqa_suppresses(self):
        assert "R10" not in rules_fired(
            "from multiprocessing import shared_memory\n"
            "def f(n):\n"
            "    shm = shared_memory.SharedMemory(name=n)  "
            "# repro: noqa[R10] probe only\n"
            "    shm.close()\n"
        )


class TestPragmas:
    def test_bare_noqa_suppresses_all_rules(self):
        assert (
            rules_fired("def f(acc=[]):  # repro: noqa\n    return acc\n")
            == set()
        )

    def test_noqa_for_other_rule_does_not_suppress(self):
        assert "R6" in rules_fired(
            "def f(acc=[]):  # repro: noqa[R1]\n    return acc\n"
        )

    def test_multiple_codes(self):
        source = (
            "import numpy as np\n"
            "def f(acc=[], t=0.5):  # repro: noqa[R6, R2]\n"
            "    return acc if t == 0.5 else None\n"
        )
        fired = rules_fired(source)
        assert "R6" not in fired


@pytest.mark.parametrize("rule_id", sorted(f"R{i}" for i in range(1, 11)))
def test_every_rule_has_a_firing_fixture(rule_id):
    """Meta-test: the fixtures above collectively exercise every rule."""
    fixtures = {
        "R1": ("vals = list({1, 2, 3})\n", SRC),
        "R2": ("ok = x == 0.5\n", SRC),
        "R3": ("import random\n", SRC),
        "R4": ("import time\nt = time.time()\n", SRC),
        "R5": (
            "def run(pool, xs):\n"
            "    return [pool.submit(lambda x: x, x) for x in xs]\n",
            SRC,
        ),
        "R6": ("def f(a=[]):\n    return a\n", SRC),
        "R7": ("try:\n    x()\nexcept:\n    raise\n", SRC),
        "R8": ("import numpy as np\nm = np.mean(w)\n", "src/repro/core/pipeline.py"),
        "R9": (
            "import time\nnow = time.time()\n",
            "src/repro/ingest/frontier.py",
        ),
        "R10": (
            "from multiprocessing import shared_memory\n"
            "def f(n):\n"
            "    shm = shared_memory.SharedMemory(name=n)\n"
            "    x = float(shm.buf[0])\n"
            "    shm.close()\n"
            "    return x\n",
            SRC,
        ),
    }
    source, relpath = fixtures[rule_id]
    assert rule_id in {v.rule for v in analyze_source(source, relpath)}
