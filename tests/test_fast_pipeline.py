"""Tests for the fast round pipeline: rolling correlation and CSR graphs.

The contract under test is *equivalence*: the incremental kernel must track
:func:`pearson_matrix` within 1e-9 over long streams (including rounds right
after an exact refresh), and the array-backed TSG/Louvain must reproduce the
dict reference implementations label for label.
"""

import numpy as np
import pytest

from repro.core import CAD, CADConfig, build_tsg
from repro.graph import (
    CSRGraph,
    Graph,
    absolute_weight_graph,
    knn_graph,
    label_propagation,
    label_propagation_csr,
    louvain,
    louvain_csr,
    modularity,
    modularity_csr,
    prune_weak_edges,
    tsg_csr,
    tsg_edge_arrays,
)
from repro.timeseries import (
    MultivariateTimeSeries,
    RollingCorrelation,
    pearson_matrix,
    pearson_matrix_masked,
)

def community_values(n_sensors, length, n_communities=3, seed=0, noise=0.05):
    """Community-structured sensor matrix (same shape as the conftest toy)."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    drivers = np.vstack(
        [
            np.sin(2 * np.pi * t / rng.uniform(18, 40) + rng.uniform(0, 6))
            for _ in range(n_communities)
        ]
    )
    values = np.empty((n_sensors, length))
    for i in range(n_sensors):
        values[i] = (
            rng.uniform(0.8, 1.2) * drivers[i % n_communities]
            + noise * rng.standard_normal(length)
        )
    return values


def stream_windows(values, window, step):
    start = 0
    while start + window <= values.shape[1]:
        yield values[:, start : start + window]
        start += step


class TestRollingCorrelation:
    def test_matches_pearson_over_long_stream(self):
        rng = np.random.default_rng(3)
        values = np.cumsum(rng.normal(size=(9, 2000)), axis=1)
        kernel = RollingCorrelation(9, 60, 7, refresh_every=16)
        refresh_rounds, post_refresh_rounds = 0, 0
        for index, win in enumerate(stream_windows(values, 60, 7)):
            fast = kernel.update(win)
            exact = pearson_matrix(win)
            np.testing.assert_allclose(fast, exact, atol=1e-9)
            if index % 16 == 0:
                refresh_rounds += 1
                # Refresh rounds are *exactly* the reference computation.
                assert np.array_equal(fast, exact)
            elif index % 16 == 1:
                post_refresh_rounds += 1
        assert refresh_rounds > 3 and post_refresh_rounds > 3

    def test_far_from_zero_data_stays_conditioned(self):
        # Large offsets are where naive sum-of-products kernels lose
        # precision; the baseline shift must keep errors ~1e-12.
        rng = np.random.default_rng(4)
        values = 1e6 + np.cumsum(rng.normal(size=(6, 1500)), axis=1)
        kernel = RollingCorrelation(6, 50, 5, refresh_every=64)
        for win in stream_windows(values, 50, 5):
            np.testing.assert_allclose(
                kernel.update(win), pearson_matrix(win), atol=1e-9
            )

    def test_constant_rows_zeroed(self):
        rng = np.random.default_rng(5)
        values = rng.normal(size=(4, 300))
        values[2] = 7.5  # flat-lined sensor
        kernel = RollingCorrelation(4, 40, 4)
        for win in stream_windows(values, 40, 4):
            corr = kernel.update(win)
            assert np.array_equal(corr[2], np.zeros(4))
            assert np.array_equal(corr[:, 2], np.zeros(4))

    def test_nan_window_takes_masked_path_and_recovers(self):
        rng = np.random.default_rng(6)
        values = rng.normal(size=(5, 400))
        kernel = RollingCorrelation(5, 40, 4, refresh_every=64)
        windows = list(stream_windows(values, 40, 4))
        poisoned = windows[3].copy()
        poisoned[1, 5] = np.nan
        for index, win in enumerate(windows):
            if index == 3:
                corr = kernel.update(poisoned)
                expected = pearson_matrix_masked(poisoned, kernel.min_overlap)
            else:
                corr = kernel.update(win)
                expected = pearson_matrix(win)
            np.testing.assert_allclose(corr, expected, atol=1e-9)

    def test_non_overlapping_call_refreshes_exactly(self):
        rng = np.random.default_rng(7)
        kernel = RollingCorrelation(5, 30, 3, refresh_every=64)
        kernel.update(rng.normal(size=(5, 30)))
        unrelated = rng.normal(size=(5, 30))  # does not extend the stream
        assert np.array_equal(kernel.update(unrelated), pearson_matrix(unrelated))

    def test_state_round_trip_bit_identical(self):
        rng = np.random.default_rng(8)
        values = np.cumsum(rng.normal(size=(6, 800)), axis=1)
        windows = list(stream_windows(values, 50, 5))
        kernel = RollingCorrelation(6, 50, 5, refresh_every=32)
        for win in windows[:40]:
            kernel.update(win)
        resumed = RollingCorrelation.from_state(kernel.to_state())
        for win in windows[40:]:
            assert np.array_equal(kernel.update(win), resumed.update(win))

    def test_seek_only_on_fresh_kernel(self):
        kernel = RollingCorrelation(3, 10, 2)
        kernel.seek(64)
        assert kernel.rounds_seen == 64
        kernel.update(np.random.default_rng(0).normal(size=(3, 10)))
        with pytest.raises(ValueError, match="fresh"):
            kernel.seek(128)

    def test_rejects_bad_shapes_and_params(self):
        with pytest.raises(ValueError):
            RollingCorrelation(0, 10, 2)
        with pytest.raises(ValueError):
            RollingCorrelation(3, 10, 2, refresh_every=0)
        kernel = RollingCorrelation(3, 10, 2)
        with pytest.raises(ValueError, match="shape"):
            kernel.update(np.zeros((3, 11)))


def random_knn_corr(rng, n):
    """A symmetric correlation-like matrix with community structure."""
    drivers = rng.normal(size=(3, 64))
    data = drivers[rng.integers(0, 3, size=n)] + 0.4 * rng.normal(size=(n, 64))
    return pearson_matrix(data)


class TestTSGEdgeArrays:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dict_path(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(6, 50))
        k = int(rng.integers(1, min(n - 1, 8) + 1))
        tau = float(rng.uniform(0.0, 0.8))
        corr = random_knn_corr(rng, n)
        reference = prune_weak_edges(knn_graph(corr, k), tau)
        rows, cols, weights = tsg_edge_arrays(corr, k, tau)
        expected = {(u, v): w for u, v, w in reference.edges()}
        got = {(int(u), int(v)): w for u, v, w in zip(rows, cols, weights)}
        assert expected.keys() == got.keys()
        for key, weight in expected.items():
            assert got[key] == weight  # same float, same direction choice

    def test_build_tsg_unchanged_edges(self):
        rng = np.random.default_rng(11)
        window = rng.normal(size=(10, 40))
        corr = pearson_matrix(window)
        via_build = build_tsg(window, k=3, tau=0.2)
        via_loops = prune_weak_edges(knn_graph(corr, 3), 0.2)
        assert via_build.edge_set() == via_loops.edge_set()
        for u, v, w in via_loops.edges():
            assert via_build.weight(u, v) == w


class TestCSRGraph:
    def test_round_trip_through_dict_graph(self):
        rng = np.random.default_rng(12)
        corr = random_knn_corr(rng, 20)
        csr = tsg_csr(corr, 4, 0.1)
        dict_graph = csr.to_graph()
        back = CSRGraph.from_graph(dict_graph)
        assert np.array_equal(back.indptr, csr.indptr)
        assert np.array_equal(back.indices, csr.indices)
        assert np.array_equal(back.weights, csr.weights)
        assert csr.n_edges == dict_graph.n_edges
        assert csr.total_weight() == pytest.approx(dict_graph.total_weight())
        degrees = csr.weighted_degrees()
        for v in range(20):
            assert degrees[v] == pytest.approx(dict_graph.weighted_degree(v))

    def test_empty_graph(self):
        csr = CSRGraph.from_edges(4, np.zeros(0, int), np.zeros(0, int), np.zeros(0))
        assert csr.n_edges == 0
        assert csr.total_weight() == 0.0
        assert louvain_csr(csr).labels == (0, 1, 2, 3)


class TestCSRCommunities:
    @pytest.mark.parametrize("seed", range(8))
    def test_louvain_labels_match_dict(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(6, 80))
        k = int(rng.integers(1, min(n - 1, 10) + 1))
        corr = random_knn_corr(rng, n)
        tau = float(rng.uniform(0.0, 0.5))
        dict_graph = absolute_weight_graph(prune_weak_edges(knn_graph(corr, k), tau))
        csr = tsg_csr(corr, k, tau).absolute()
        reference = louvain(dict_graph)
        fast = louvain_csr(csr)
        assert fast.labels == reference.labels
        assert fast.n_communities == reference.n_communities
        assert fast.modularity == pytest.approx(reference.modularity, abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_label_propagation_matches_dict(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(6, 60))
        corr = random_knn_corr(rng, n)
        dict_graph = absolute_weight_graph(prune_weak_edges(knn_graph(corr, 3), 0.2))
        csr = tsg_csr(corr, 3, 0.2).absolute()
        assert label_propagation_csr(csr).labels == label_propagation(dict_graph).labels

    def test_modularity_matches_dict(self):
        rng = np.random.default_rng(300)
        corr = random_knn_corr(rng, 30)
        dict_graph = absolute_weight_graph(prune_weak_edges(knn_graph(corr, 4), 0.1))
        csr = tsg_csr(corr, 4, 0.1).absolute()
        labels = louvain(dict_graph).labels
        assert modularity_csr(csr, np.array(labels)) == pytest.approx(
            modularity(dict_graph, list(labels)), abs=1e-12
        )

    def test_louvain_csr_rejects_negative_weights(self):
        csr = CSRGraph.from_edges(3, np.array([0]), np.array([1]), np.array([-0.5]))
        with pytest.raises(ValueError, match="non-negative"):
            louvain_csr(csr)
        with pytest.raises(ValueError, match="non-negative"):
            label_propagation_csr(csr)


class TestEngineEquivalence:
    """The fast engine must reproduce the reference engine's detections."""

    @pytest.mark.parametrize("method", ["louvain", "label_propagation"])
    def test_detect_records_match_reference(self, method):
        values = community_values(n_sensors=10, length=1600, seed=21)
        series = MultivariateTimeSeries(values)
        results = {}
        for engine in ("fast", "reference"):
            config = CADConfig(
                window=80,
                step=8,
                k=4,
                tau=0.5,
                theta=0.2,
                rc_mode="window",
                rc_window=6,
                community_method=method,
                engine=engine,
                corr_refresh=16,
            )
            results[engine] = CAD(config, 10).detect(series)
        assert results["fast"].rounds == results["reference"].rounds
        assert results["fast"].anomalies == results["reference"].anomalies


class TestGraphSatellites:
    """Running total weight and the zero-copy neighbour view."""

    def test_total_weight_tracks_add_overwrite_remove(self):
        g = Graph(5)
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.25)
        assert g.total_weight() == pytest.approx(0.75)
        g.add_edge(1, 0, 1.0)  # overwrite replaces, not accumulates
        assert g.total_weight() == pytest.approx(1.25)
        g.remove_edge(0, 1)
        assert g.total_weight() == pytest.approx(0.25)
        g.remove_edge(1, 2)
        assert g.total_weight() == pytest.approx(0.0)

    def test_total_weight_matches_recomputation_randomised(self):
        rng = np.random.default_rng(42)
        g = Graph(12)
        live = {}
        for _ in range(300):
            u, v = sorted(rng.choice(12, size=2, replace=False))
            if (u, v) in live and rng.random() < 0.4:
                g.remove_edge(int(u), int(v))
                del live[(u, v)]
            else:
                w = float(rng.normal())
                g.add_edge(int(u), int(v), w)
                live[(u, v)] = w
            assert g.total_weight() == pytest.approx(sum(live.values()), abs=1e-9)

    def test_neighbors_view_is_read_only(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        view = g.neighbors_view(0)
        assert dict(view) == {1: 0.5}
        with pytest.raises(TypeError):
            view[2] = 1.0
        # The copying accessor still hands out an independent dict.
        copy = g.neighbors(0)
        copy[2] = 1.0
        assert not g.has_edge(0, 2)

    def test_neighbors_view_tracks_mutation(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        view = g.neighbors_view(0)
        g.add_edge(0, 2, 0.7)
        assert dict(view) == {1: 0.5, 2: 0.7}
