"""Tests for the benchmark harness (runner caching, reporting)."""

import numpy as np
import pytest

from repro.bench import format_series, format_table, n_repeats, run_method
from repro.bench.reporting import _cell


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["Method", "F1"],
            [["CAD", 95.0], ["LOF", 76.2]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "Method" in lines[1]
        assert "CAD" in lines[3]
        # All data rows align to the same width.
        assert len(lines[3]) == len(lines[4])

    def test_format_table_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series("F1 vs n", [1, 2], [0.5, 0.75])
        assert "F1 vs n" in text
        assert "0.8" in text or "0.7" in text

    def test_cell_float_formatting(self):
        assert _cell(95.04) == "95.0"
        assert _cell(1.234) == "1.23"
        assert _cell(0.01) == "0.01"
        assert _cell("x") == "x"
        assert _cell(7) == "7"


class TestRunner:
    def test_n_repeats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_REPEATS", "5")
        assert n_repeats() == 5
        monkeypatch.setenv("REPRO_REPEATS", "0")
        assert n_repeats() == 1

    def test_run_method_caches(self, monkeypatch, tmp_path):
        # Point the disk cache at a temp dir so this test is hermetic.
        import repro.bench.runner as runner

        monkeypatch.setattr(runner, "_CACHE_DIR", tmp_path)
        monkeypatch.setattr(runner, "_MEMORY_CACHE", {})
        first = runner.run_method("ECOD", "smd-sim-05", seed=0)
        assert (tmp_path / "ECOD__smd-sim-05__0.npz").exists()
        # Clear the memory cache: the second call must hit the disk cache.
        monkeypatch.setattr(runner, "_MEMORY_CACHE", {})
        second = runner.run_method("ECOD", "smd-sim-05", seed=0)
        np.testing.assert_array_equal(first.scores, second.scores)
        assert second.fit_seconds == first.fit_seconds

    def test_star_in_method_name_is_safe(self, monkeypatch, tmp_path):
        import repro.bench.runner as runner

        path = runner._cache_path(("SAND*", "x", 0))
        assert "*" not in path.name

    def test_probe_rc_level_in_unit_interval(self):
        from repro.bench import probe_rc_level
        from repro.datasets import load_dataset

        level = probe_rc_level(load_dataset("smd-sim-05"))
        assert 0.0 < level < 1.0

    def test_tuned_config_cached_on_disk(self, monkeypatch, tmp_path):
        import repro.bench.runner as runner
        from repro.datasets import load_dataset

        monkeypatch.setattr(runner, "_CACHE_DIR", tmp_path)
        monkeypatch.setattr(runner, "_THETA_CACHE", {})
        dataset = load_dataset("smd-sim-05")
        first = runner.tuned_cad_config(dataset)
        assert (tmp_path / "theta__smd-sim-05.txt").exists()
        monkeypatch.setattr(runner, "_THETA_CACHE", {})
        second = runner.tuned_cad_config(dataset)
        assert second.theta == pytest.approx(first.theta)
