"""Tests for VUS, sensor-level F1, ranking and segments."""

import numpy as np
import pytest

from repro.evaluation import (
    Segment,
    SensorEvent,
    average_rank,
    f1_sensor,
    first_detection,
    label_segments,
    rank_scores,
    segments_to_labels,
    soft_labels,
    vus,
)


class TestSegments:
    def test_label_segments(self):
        labels = np.array([0, 1, 1, 0, 0, 1, 0])
        segments = label_segments(labels)
        assert segments == [Segment(1, 3), Segment(5, 6)]

    def test_edges(self):
        assert label_segments(np.array([1, 1])) == [Segment(0, 2)]
        assert label_segments(np.zeros(3)) == []
        assert label_segments(np.array([])) == []

    def test_round_trip(self):
        labels = np.array([1, 0, 1, 1, 0, 0, 1])
        segments = label_segments(labels)
        np.testing.assert_array_equal(segments_to_labels(segments, 7), labels)

    def test_segments_to_labels_overflow(self):
        with pytest.raises(ValueError):
            segments_to_labels([Segment(0, 5)], 3)

    def test_first_detection(self):
        segment = Segment(2, 6)
        predictions = np.array([1, 0, 0, 0, 1, 1, 0])
        assert first_detection(segment, predictions) == 4

    def test_first_detection_missed(self):
        assert first_detection(Segment(0, 2), np.array([0, 0, 1])) is None

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            Segment(3, 3)

    def test_overlaps(self):
        segment = Segment(2, 6)
        assert segment.overlaps(5, 8)
        assert not segment.overlaps(6, 8)
        assert segment.contains(2) and not segment.contains(6)


class TestSoftLabels:
    def test_zero_buffer_identity(self):
        labels = np.array([0, 1, 1, 0])
        np.testing.assert_array_equal(soft_labels(labels, 0), labels.astype(float))

    def test_ramp_shape(self):
        labels = np.zeros(11, dtype=int)
        labels[5] = 1
        soft = soft_labels(labels, 2)
        assert soft[5] == 1.0
        assert 0 < soft[4] < 1 and 0 < soft[6] < 1
        assert soft[4] > soft[3] > 0
        assert soft[2] == 0.0

    def test_symmetric(self):
        labels = np.zeros(11, dtype=int)
        labels[5] = 1
        soft = soft_labels(labels, 3)
        np.testing.assert_allclose(soft, soft[::-1])


class TestVus:
    def test_perfect_scores_high_volume(self):
        labels = np.zeros(200, dtype=int)
        labels[60:90] = 1
        scores = labels.astype(float)
        result = vus(scores, labels, mode="none")
        # Buffered (soft) labels give partial weight outside the exact
        # anomaly, so even a perfect binary detector stays below 1.0.
        assert result.vus_roc > 0.8
        assert result.vus_pr > 0.7
        assert result.roc_aucs[0] == pytest.approx(1.0)
        assert result.pr_aucs[0] == pytest.approx(1.0)

    def test_random_scores_near_half_roc(self):
        rng = np.random.default_rng(0)
        labels = np.zeros(400, dtype=int)
        labels[100:160] = 1
        scores = rng.random(400)
        result = vus(scores, labels, mode="none")
        assert 0.3 < result.vus_roc < 0.7

    def test_pa_at_least_none(self):
        rng = np.random.default_rng(1)
        labels = np.zeros(300, dtype=int)
        labels[50:110] = 1
        scores = rng.random(300)
        raw = vus(scores, labels, mode="none")
        adjusted = vus(scores, labels, mode="pa")
        assert adjusted.vus_roc >= raw.vus_roc - 1e-9

    def test_dpa_not_above_pa(self):
        rng = np.random.default_rng(2)
        labels = np.zeros(300, dtype=int)
        labels[50:110] = 1
        labels[200:240] = 1
        scores = rng.random(300)
        assert vus(scores, labels, "dpa").vus_roc <= vus(scores, labels, "pa").vus_roc + 1e-9

    def test_buffer_lengths_recorded(self):
        labels = np.zeros(100, dtype=int)
        labels[10:30] = 1
        result = vus(labels.astype(float), labels, n_buffers=4)
        assert len(result.buffer_lengths) == len(result.roc_aucs)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            vus(np.zeros(3), np.zeros(3), mode="bogus")


class TestF1Sensor:
    def test_exact_match(self):
        events = [SensorEvent(0, 10, frozenset({1, 2}))]
        predicted = [(0, 10, frozenset({1, 2}))]
        assert f1_sensor(predicted, events, 5).f1 == 1.0

    def test_overlapping_predictions_merged(self):
        events = [SensorEvent(0, 10, frozenset({1, 2}))]
        predicted = [(0, 4, frozenset({1})), (5, 12, frozenset({2}))]
        assert f1_sensor(predicted, events, 5).f1 == 1.0

    def test_non_overlapping_ignored(self):
        events = [SensorEvent(0, 10, frozenset({1}))]
        predicted = [(20, 30, frozenset({1}))]
        assert f1_sensor(predicted, events, 5).f1 == 0.0

    def test_macro_average(self):
        events = [
            SensorEvent(0, 10, frozenset({1})),
            SensorEvent(20, 30, frozenset({2})),
        ]
        predicted = [(0, 10, frozenset({1}))]
        score = f1_sensor(predicted, events, 5)
        assert score.f1 == pytest.approx(0.5)
        assert score.per_event == (1.0, 0.0)

    def test_empty_ground_truth(self):
        with pytest.raises(ValueError):
            f1_sensor([], [], 5)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            SensorEvent(5, 5, frozenset({1}))
        with pytest.raises(ValueError):
            SensorEvent(0, 5, frozenset())


class TestRanking:
    def test_rank_scores(self):
        ranks = rank_scores({"a": 0.9, "b": 0.5, "c": 0.7})
        assert ranks == {"a": 1.0, "c": 2.0, "b": 3.0}

    def test_ties_average(self):
        ranks = rank_scores({"a": 0.9, "b": 0.9, "c": 0.1})
        assert ranks["a"] == ranks["b"] == pytest.approx(1.5)
        assert ranks["c"] == 3.0

    def test_lower_is_better(self):
        ranks = rank_scores({"a": 1.0, "b": 5.0}, higher_is_better=False)
        assert ranks["a"] == 1.0

    def test_average_rank(self):
        columns = [
            {"a": 0.9, "b": 0.1},
            {"a": 0.2, "b": 0.8},
        ]
        averaged = average_rank(columns)
        assert averaged["a"] == averaged["b"] == pytest.approx(1.5)

    def test_average_rank_mismatched_methods(self):
        with pytest.raises(ValueError):
            average_rank([{"a": 1.0}, {"b": 1.0}])

    def test_empty(self):
        with pytest.raises(ValueError):
            rank_scores({})
        with pytest.raises(ValueError):
            average_rank([])
