"""Tests for the streaming front-end (paper Section IV-F)."""

import numpy as np
import pytest

from repro.core import CAD, StreamingCAD
from repro.timeseries import MultivariateTimeSeries, WindowSpec


class TestPushMechanics:
    def test_no_record_before_first_window(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        for _ in range(toy_config.window - 1):
            assert stream.push(np.zeros(12)) is None

    def test_record_cadence(self, toy_config, toy_values):
        stream = StreamingCAD(toy_config, 12)
        records = stream.push_many(toy_values[:, :400])
        expected = WindowSpec(toy_config.window, toy_config.step).n_rounds(400)
        assert len(records) == expected

    def test_wrong_sample_width(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        with pytest.raises(ValueError):
            stream.push(np.zeros(5))

    def test_push_many_shape_check(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        with pytest.raises(ValueError):
            stream.push_many(np.zeros((5, 100)))

    def test_samples_seen(self, toy_config, toy_values):
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :250])
        assert stream.samples_seen == 250


class TestEquivalenceWithBatch:
    def test_same_variations_as_batch_detect(self, toy_config, toy_values):
        """Streaming must reproduce the batch detector's rounds exactly."""
        series = MultivariateTimeSeries(toy_values[:, :1200])

        batch = CAD(toy_config, 12)
        batch_result = batch.detect(series)

        stream = StreamingCAD(toy_config, 12)
        records = stream.push_many(series.values)

        assert len(records) == len(batch_result.rounds)
        for streamed, batched in zip(records, batch_result.rounds):
            assert streamed.n_variations == batched.n_variations
            assert streamed.outliers == batched.outliers
            assert streamed.abnormal == batched.abnormal

    def test_warm_up_carries_state(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        stream = StreamingCAD(toy_config, 12)
        stream.warm_up(history)

        batch = CAD(toy_config, 12)
        batch.warm_up(history)
        batch_result = batch.detect(test)

        records = stream.push_many(test.values)
        assert [r.abnormal for r in records] == [
            r.abnormal for r in batch_result.rounds
        ]


class TestAlarms:
    def test_alarm_generator_yields_abnormal_only(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        stream = StreamingCAD(toy_config, 12)
        stream.warm_up(history)
        alarms = list(stream.alarms(iter(test.values.T)))
        assert all(record.abnormal for record in alarms)
        assert alarms, "the injected break should raise at least one alarm"
