"""Tests for the streaming front-end (paper Section IV-F)."""

import numpy as np
import pytest

from repro.core import CAD, StreamingCAD
from repro.timeseries import MultivariateTimeSeries, WindowSpec


class TestPushMechanics:
    def test_no_record_before_first_window(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        for _ in range(toy_config.window - 1):
            assert stream.push(np.zeros(12)) is None

    def test_record_cadence(self, toy_config, toy_values):
        stream = StreamingCAD(toy_config, 12)
        records = stream.push_many(toy_values[:, :400])
        expected = WindowSpec(toy_config.window, toy_config.step).n_rounds(400)
        assert len(records) == expected

    def test_wrong_sample_width(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        with pytest.raises(ValueError):
            stream.push(np.zeros(5))

    def test_push_many_shape_check(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        with pytest.raises(ValueError):
            stream.push_many(np.zeros((5, 100)))

    def test_samples_seen(self, toy_config, toy_values):
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, :250])
        assert stream.samples_seen == 250

    def test_push_many_matches_push_loop(self, toy_config, toy_values):
        # push_many takes the vectorized block path (preallocated round
        # buffers, batched finiteness scan); results must stay bitwise the
        # one-sample push loop.
        block = StreamingCAD(toy_config, 12)
        looped = StreamingCAD(toy_config, 12)
        batch = toy_values[:, :500]
        block_records = block.push_many(batch)
        loop_records = [
            r for r in (looped.push(batch[:, i]) for i in range(500)) if r is not None
        ]
        assert block_records == loop_records
        assert len(block_records) > 10

    def test_round_buffer_reuse_does_not_corrupt_prior_round(self):
        # Round assembly alternates two preallocated buffers; the fast
        # kernel keeps the previous round's window *by reference* for its
        # rank-2 update, so the buffer written for round r+1 must never be
        # the array round r handed to the kernel.  Aliasing would silently
        # corrupt the incremental correlation — the reference engine, which
        # carries nothing between rounds, is the oracle.  step = window-1
        # maximises buffer turnover between consecutive rounds.
        from repro.core import CADConfig

        rng = np.random.default_rng(0)
        values = np.cumsum(rng.normal(size=(10, 800)), axis=1)
        records = {}
        for engine in ("fast", "reference"):
            config = CADConfig(window=60, step=59, engine=engine, corr_refresh=64)
            records[engine] = StreamingCAD(config, 10).push_many(values)
        assert len(records["fast"]) > 5
        assert records["fast"] == records["reference"]


class TestEquivalenceWithBatch:
    def test_same_variations_as_batch_detect(self, toy_config, toy_values):
        """Streaming must reproduce the batch detector's rounds exactly."""
        series = MultivariateTimeSeries(toy_values[:, :1200])

        batch = CAD(toy_config, 12)
        batch_result = batch.detect(series)

        stream = StreamingCAD(toy_config, 12)
        records = stream.push_many(series.values)

        assert len(records) == len(batch_result.rounds)
        for streamed, batched in zip(records, batch_result.rounds):
            assert streamed.n_variations == batched.n_variations
            assert streamed.outliers == batched.outliers
            assert streamed.abnormal == batched.abnormal

    def test_warm_up_carries_state(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        stream = StreamingCAD(toy_config, 12)
        stream.warm_up(history)

        batch = CAD(toy_config, 12)
        batch.warm_up(history)
        batch_result = batch.detect(test)

        records = stream.push_many(test.values)
        assert [r.abnormal for r in records] == [
            r.abnormal for r in batch_result.rounds
        ]


class TestAlarms:
    def test_alarm_generator_yields_abnormal_only(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        stream = StreamingCAD(toy_config, 12)
        stream.warm_up(history)
        alarms = list(stream.alarms(iter(test.values.T)))
        assert all(record.abnormal for record in alarms)
        assert alarms, "the injected break should raise at least one alarm"


class TestNextRoundEnd:
    def test_first_round_ends_at_window(self, toy_config):
        stream = StreamingCAD(toy_config, 12)
        assert stream.next_round_end == toy_config.window

    def test_advances_by_step(self, toy_config, toy_values):
        stream = StreamingCAD(toy_config, 12)
        stream.push_many(toy_values[:, : toy_config.window])
        assert stream.next_round_end == toy_config.window + toy_config.step

    def test_push_at_boundary_returns_record(self, toy_config, toy_values):
        stream = StreamingCAD(toy_config, 12)
        for column in toy_values[:, :400].T:
            closes_round = stream.samples_seen + 1 == stream.next_round_end
            record = stream.push(column)
            assert (record is not None) == closes_round


class TestPushError:
    def test_reports_failing_index_and_partial_records(self, toy_config, toy_values):
        from repro.core import PushError

        batch = toy_values[:, :400].copy()
        batch[3, 250] = np.nan  # strict mode rejects NaN
        stream = StreamingCAD(toy_config, 12)
        with pytest.raises(PushError) as excinfo:
            stream.push_many(batch)
        error = excinfo.value
        assert error.index == 250
        assert isinstance(error.__cause__, ValueError)
        clean_rounds = [
            r for r in StreamingCAD(toy_config, 12).push_many(batch[:, :250])
        ]
        assert error.records == clean_rounds

    def test_stream_positioned_at_failing_column(self, toy_config, toy_values):
        """Validation precedes mutation: resume = re-push the fixed column."""
        from repro.core import PushError

        batch = toy_values[:, :400].copy()
        original = batch[3, 250]
        batch[3, 250] = np.nan
        stream = StreamingCAD(toy_config, 12)
        with pytest.raises(PushError) as excinfo:
            stream.push_many(batch)
        assert stream.samples_seen == 250  # the bad column was never absorbed

        batch[3, 250] = original
        resumed = excinfo.value.records + stream.push_many(batch[:, 250:])
        baseline = StreamingCAD(toy_config, 12).push_many(batch)
        assert resumed == baseline

    def test_is_a_value_error(self):
        from repro.core import PushError

        assert issubclass(PushError, ValueError)
