"""Tests for Pearson correlation, top-k neighbours and autocorrelation."""

import numpy as np
import pytest

from repro.timeseries import autocorrelation, pearson, pearson_matrix, top_k_neighbors


class TestPearson:
    def test_perfect_positive(self):
        x = np.arange(10.0)
        assert pearson(x, 2 * x + 3) == pytest.approx(1.0)

    def test_perfect_negative(self):
        x = np.arange(10.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson(np.ones(5), np.arange(5.0)) == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal(50), rng.standard_normal(50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(3), np.zeros(4))

    def test_too_short(self):
        with pytest.raises(ValueError):
            pearson(np.zeros(1), np.zeros(1))


class TestPearsonMatrix:
    def test_matches_corrcoef(self):
        rng = np.random.default_rng(1)
        window = rng.standard_normal((5, 40))
        ours = pearson_matrix(window)
        numpy_result = np.corrcoef(window)
        np.testing.assert_allclose(ours, numpy_result, atol=1e-12)

    def test_symmetric_unit_diagonal(self):
        rng = np.random.default_rng(2)
        matrix = pearson_matrix(rng.standard_normal((6, 30)))
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 1.0)

    def test_constant_row_zeroed(self):
        window = np.vstack([np.ones(20), np.arange(20.0), np.sin(np.arange(20.0))])
        matrix = pearson_matrix(window)
        assert (matrix[0] == 0).all()
        assert (matrix[:, 0] == 0).all()
        assert matrix[1, 2] != 0

    def test_values_clamped(self):
        rng = np.random.default_rng(3)
        matrix = pearson_matrix(rng.standard_normal((4, 10)))
        assert matrix.max() <= 1.0
        assert matrix.min() >= -1.0

    def test_rejects_short_window(self):
        with pytest.raises(ValueError):
            pearson_matrix(np.zeros((3, 1)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pearson_matrix(np.zeros(10))


class TestTopK:
    def test_picks_strongest_absolute(self):
        corr = np.array(
            [
                [1.0, 0.9, -0.95, 0.1],
                [0.9, 1.0, 0.2, 0.3],
                [-0.95, 0.2, 1.0, 0.4],
                [0.1, 0.3, 0.4, 1.0],
            ]
        )
        neighbors = top_k_neighbors(corr, 2)
        # Vertex 0: strongest |corr| are 2 (-0.95) then 1 (0.9).
        assert list(neighbors[0]) == [2, 1]

    def test_excludes_self(self):
        rng = np.random.default_rng(4)
        raw = rng.uniform(-1, 1, (8, 8))
        corr = (raw + raw.T) / 2
        np.fill_diagonal(corr, 1.0)
        neighbors = top_k_neighbors(corr, 3)
        for v in range(8):
            assert v not in neighbors[v]

    def test_shape(self):
        corr = np.eye(5)
        assert top_k_neighbors(corr, 2).shape == (5, 2)

    @pytest.mark.parametrize("k", [0, 5, 9])
    def test_invalid_k(self, k):
        with pytest.raises(ValueError):
            top_k_neighbors(np.eye(5), k)

    def test_deterministic_order(self):
        corr = np.eye(4)
        a = top_k_neighbors(corr, 2)
        b = top_k_neighbors(corr, 2)
        np.testing.assert_array_equal(a, b)


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        rng = np.random.default_rng(5)
        acf = autocorrelation(rng.standard_normal(100))
        assert acf[0] == pytest.approx(1.0)

    def test_periodic_signal_peaks_at_period(self):
        t = np.arange(400)
        acf = autocorrelation(np.sin(2 * np.pi * t / 20), max_lag=50)
        # The biased estimator scales lag l by (T - l) / T, so ~0.95 here.
        assert abs(acf[20] - 1.0) < 0.08

    def test_constant_series(self):
        acf = autocorrelation(np.ones(50), max_lag=10)
        assert (acf == 0).all()

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(64)
        acf = autocorrelation(x, max_lag=5)
        centered = x - x.mean()
        for lag in range(6):
            direct = np.dot(centered[: 64 - lag], centered[lag:]) / np.dot(centered, centered)
            assert acf[lag] == pytest.approx(direct, abs=1e-10)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros((2, 3)))
