"""Tests for SBD, k-Shape and k-means."""

import numpy as np
import pytest

from repro.clustering import (
    cross_correlation,
    extract_shape,
    kmeans,
    kshape,
    ncc_c,
    sbd,
    shift_series,
)
from repro.clustering.sbd import sbd_to_reference


class TestCrossCorrelation:
    def test_matches_numpy_correlate(self):
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal(16), rng.standard_normal(16)
        ours = cross_correlation(x, y)
        expected = np.correlate(x, y, mode="full")
        np.testing.assert_allclose(ours, expected, atol=1e-10)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            cross_correlation(np.zeros(3), np.zeros(4))


class TestSbd:
    def test_identical_series(self):
        x = np.sin(np.arange(32) / 3.0)
        distance, shift = sbd(x, x)
        assert distance == pytest.approx(0.0, abs=1e-10)
        assert shift == 0

    def test_shifted_series_recovered(self):
        x = np.zeros(32)
        x[8:12] = 1.0
        y = np.roll(x, 5)
        distance, shift = sbd(x, y)
        assert distance == pytest.approx(0.0, abs=1e-10)
        # The returned shift aligns y back onto x.
        np.testing.assert_allclose(shift_series(y, shift), x, atol=1e-10)

    def test_range(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            d, _ = sbd(rng.standard_normal(20), rng.standard_normal(20))
            assert 0.0 <= d <= 2.0

    def test_anticorrelated_pulse_is_large(self):
        # A one-sided pulse cannot be aligned with its negation at any
        # shift (a periodic signal could — half a period away).
        x = np.zeros(32)
        x[10:14] = 1.0
        d, _ = sbd(x, -x)
        assert d == pytest.approx(1.0, abs=1e-9)

    def test_zero_series(self):
        d, _ = sbd(np.zeros(8), np.ones(8))
        assert d == pytest.approx(1.0)

    def test_batched_matches_single(self):
        rng = np.random.default_rng(2)
        reference = rng.standard_normal(24)
        rows = rng.standard_normal((10, 24))
        distances, shifts = sbd_to_reference(rows, reference)
        for i in range(10):
            d, s = sbd(reference, rows[i])
            assert distances[i] == pytest.approx(d, abs=1e-10)
            assert shifts[i] == s


class TestShiftSeries:
    def test_positive_shift(self):
        np.testing.assert_array_equal(
            shift_series(np.array([1.0, 2.0, 3.0]), 1), [0.0, 1.0, 2.0]
        )

    def test_negative_shift(self):
        np.testing.assert_array_equal(
            shift_series(np.array([1.0, 2.0, 3.0]), -1), [2.0, 3.0, 0.0]
        )

    def test_zero_shift_copies(self):
        x = np.array([1.0, 2.0])
        out = shift_series(x, 0)
        out[0] = 9.0
        assert x[0] == 1.0


class TestKShape:
    def two_shape_data(self, rng, per_cluster=20, m=48):
        t = np.arange(m)
        sine = np.sin(2 * np.pi * t / 12)
        square = np.sign(np.sin(2 * np.pi * t / 12))
        rows = []
        for _ in range(per_cluster):
            rows.append(np.roll(sine, rng.integers(0, 6)) + 0.05 * rng.standard_normal(m))
        for _ in range(per_cluster):
            rows.append(np.roll(square, rng.integers(0, 6)) + 0.05 * rng.standard_normal(m))
        return np.vstack(rows)

    def test_separates_two_shapes(self):
        rng = np.random.default_rng(3)
        data = self.two_shape_data(rng)
        result = kshape(data, 2, rng)
        first = set(result.labels[:20])
        second = set(result.labels[20:])
        # Allow a couple of strays but the clusters must be dominated.
        assert np.bincount(result.labels[:20]).max() >= 16
        assert np.bincount(result.labels[20:]).max() >= 16
        assert first != second or len(first) > 1

    def test_k_one(self):
        rng = np.random.default_rng(4)
        result = kshape(rng.standard_normal((10, 16)), 1, rng)
        assert set(result.labels) == {0}

    def test_invalid_k(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError):
            kshape(np.zeros((3, 8)), 4, rng)

    def test_centroids_z_normalised(self):
        rng = np.random.default_rng(6)
        result = kshape(self.two_shape_data(rng), 2, rng)
        for centroid in result.centroids:
            assert abs(centroid.mean()) < 1e-8
            assert centroid.std() == pytest.approx(1.0, abs=1e-8)

    def test_extract_shape_recovers_common_shape(self):
        rng = np.random.default_rng(7)
        t = np.arange(32)
        base = np.sin(2 * np.pi * t / 8)
        members = np.vstack(
            [base + 0.01 * rng.standard_normal(32) for _ in range(15)]
        )
        shape = extract_shape(members, base)
        d, _ = sbd(base, shape)
        assert d < 0.01


class TestKMeans:
    def blobs(self, rng):
        a = rng.normal(0.0, 0.2, (30, 2))
        b = rng.normal(5.0, 0.2, (30, 2))
        return np.vstack([a, b])

    def test_two_blobs(self):
        rng = np.random.default_rng(8)
        result = kmeans(self.blobs(rng), 2, rng)
        assert len(set(result.labels[:30])) == 1
        assert len(set(result.labels[30:])) == 1
        assert result.labels[0] != result.labels[-1]

    def test_inertia_positive_and_small_for_tight_blobs(self):
        rng = np.random.default_rng(9)
        result = kmeans(self.blobs(rng), 2, rng)
        assert 0 < result.inertia < 30.0

    def test_cluster_sizes(self):
        rng = np.random.default_rng(10)
        result = kmeans(self.blobs(rng), 2, rng)
        np.testing.assert_array_equal(np.sort(result.cluster_sizes()), [30, 30])

    def test_k_equals_n(self):
        rng = np.random.default_rng(11)
        data = rng.standard_normal((5, 2))
        result = kmeans(data, 5, rng)
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3, 4]
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0, np.random.default_rng(0))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2, np.random.default_rng(0))
