"""Property-based tests (hypothesis) for the evaluation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.evaluation import (
    adjust_predictions,
    ahead_miss,
    best_f1,
    confusion,
    f1_dpa,
    f1_pa,
    f1_score,
    label_segments,
    rank_scores,
    segments_to_labels,
    soft_labels,
)

binary = st.integers(min_value=10, max_value=80).flatmap(
    lambda n: st.tuples(
        arrays(np.int8, n, elements=st.integers(0, 1)),
        arrays(np.int8, n, elements=st.integers(0, 1)),
    )
)


@given(binary)
@settings(max_examples=60, deadline=None)
def test_pa_dominates_dpa_dominates_raw(pair):
    predictions, labels = pair
    raw = f1_score(predictions, labels)
    dpa = f1_dpa(predictions, labels)
    pa = f1_pa(predictions, labels)
    assert raw <= dpa + 1e-12
    assert dpa <= pa + 1e-12


@given(binary)
@settings(max_examples=60, deadline=None)
def test_adjustment_is_idempotent(pair):
    predictions, labels = pair
    for mode in ("pa", "dpa"):
        once = adjust_predictions(predictions, labels, mode)
        twice = adjust_predictions(once, labels, mode)
        np.testing.assert_array_equal(once, twice)


@given(binary)
@settings(max_examples=60, deadline=None)
def test_adjustment_only_adds_inside_segments(pair):
    predictions, labels = pair
    for mode in ("pa", "dpa"):
        adjusted = adjust_predictions(predictions, labels, mode)
        added = (adjusted == 1) & (predictions == 0)
        assert not (added & (labels == 0)).any()
        # Adjustment never removes predictions.
        assert not ((adjusted == 0) & (predictions == 1)).any()


@given(binary)
@settings(max_examples=40, deadline=None)
def test_confusion_counts_partition(pair):
    predictions, labels = pair
    c = confusion(predictions, labels)
    assert c.tp + c.fp + c.fn + c.tn == len(labels)
    assert 0.0 <= c.f1 <= 1.0


@given(arrays(np.int8, st.integers(5, 60), elements=st.integers(0, 1)))
@settings(max_examples=60, deadline=None)
def test_segments_round_trip(labels):
    segments = label_segments(labels)
    np.testing.assert_array_equal(
        segments_to_labels(segments, labels.size), labels
    )
    # Segments are disjoint and ordered.
    for a, b in zip(segments, segments[1:]):
        assert a.stop < b.start + 1


@given(
    st.integers(20, 60).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=st.floats(0, 1)),
            arrays(np.int8, n, elements=st.integers(0, 1)),
        )
    )
)
@settings(max_examples=30, deadline=None)
def test_best_f1_bounded_and_ordered(pair):
    scores, labels = pair
    pa = best_f1(scores, labels, "pa", step=0.05)
    dpa = best_f1(scores, labels, "dpa", step=0.05)
    assert 0.0 <= dpa <= pa <= 1.0


@given(
    st.integers(15, 60).flatmap(
        lambda n: st.tuples(
            arrays(np.int8, n, elements=st.integers(0, 1)),
            arrays(np.int8, n, elements=st.integers(0, 1)),
            arrays(np.int8, n, elements=st.integers(0, 1)),
        )
    )
)
@settings(max_examples=60, deadline=None)
def test_ahead_miss_bounds(triple):
    m1, m2, labels = triple
    result = ahead_miss(m1, m2, labels)
    assert 0.0 <= result.ahead <= 1.0
    assert 0.0 <= result.miss <= 1.0
    assert result.n_detected <= result.n_anomalies
    assert result.n_ahead <= max(result.n_detected, 1)


@given(
    arrays(np.int8, st.integers(10, 50), elements=st.integers(0, 1)),
    st.integers(0, 10),
)
@settings(max_examples=60, deadline=None)
def test_soft_labels_bounds(labels, buffer_length):
    soft = soft_labels(labels, buffer_length)
    assert (soft >= 0).all() and (soft <= 1).all()
    # Soft weights dominate the hard labels.
    assert (soft >= labels.astype(float) - 1e-12).all()


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5),
        st.floats(0, 1, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_rank_scores_is_permutation_of_valid_ranks(scores):
    ranks = rank_scores(scores)
    values = sorted(ranks.values())
    n = len(scores)
    assert values[0] >= 1.0
    assert values[-1] <= n
    assert sum(values) == n * (n + 1) / 2
