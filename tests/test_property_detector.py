"""Property-based tests for CAD's end-to-end invariants on random data."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CAD, CADConfig
from repro.timeseries import MultivariateTimeSeries, WindowSpec


def random_mts(seed: int, n_sensors: int, length: int) -> MultivariateTimeSeries:
    """Correlated-ish random MTS (drivers + noise), deterministic in seed."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    drivers = np.vstack(
        [np.sin(2 * np.pi * t / p) for p in rng.uniform(8, 30, size=3)]
    )
    mix = rng.standard_normal((n_sensors, 3))
    return MultivariateTimeSeries(mix @ drivers + 0.2 * rng.standard_normal((n_sensors, length)))


@st.composite
def cad_cases(draw):
    seed = draw(st.integers(0, 10_000))
    n_sensors = draw(st.integers(3, 10))
    window = draw(st.integers(16, 40))
    step = draw(st.integers(2, 8))
    length = draw(st.integers(window * 4, window * 8))
    theta = draw(st.floats(0.05, 0.6))
    config = CADConfig(
        window=window,
        step=min(step, window - 1),
        k=min(3, n_sensors - 1),
        tau=draw(st.floats(0.1, 0.7)),
        theta=theta,
        rc_mode="window",
        rc_window=4,
    )
    return seed, n_sensors, length, config


@given(cad_cases())
@settings(max_examples=20, deadline=None)
def test_detection_result_invariants(case):
    seed, n_sensors, length, config = case
    series = random_mts(seed, n_sensors, length)
    detector = CAD(config, n_sensors)
    result = detector.detect(series)

    spec = WindowSpec(config.window, config.step)
    assert len(result.rounds) == spec.n_rounds(length)

    # Round records are contiguous and inside the series.
    for i, record in enumerate(result.rounds):
        assert record.index == i
        assert 0 <= record.start < record.stop <= length + config.window
        assert 0 <= record.n_variations <= n_sensors
        assert record.outliers <= set(range(n_sensors))
        assert record.variations <= set(range(n_sensors))

    # Anomalies cover exactly the abnormal rounds.
    abnormal_rounds = {r.index for r in result.rounds if r.abnormal}
    anomaly_rounds = {i for a in result.anomalies for i in a.rounds}
    assert anomaly_rounds == abnormal_rounds

    # Sensor unions agree.
    union = frozenset().union(*(a.sensors for a in result.anomalies)) if result.anomalies else frozenset()
    assert union == result.abnormal_sensors()

    # Scores bounded, labels binary, labels only where scores are >= 0.5.
    scores = result.point_scores()
    labels = result.point_labels()
    assert scores.shape == labels.shape == (length,)
    assert (scores >= 0).all() and (scores < 1).all()
    assert set(np.unique(labels)) <= {0, 1}


@given(cad_cases())
@settings(max_examples=10, deadline=None)
def test_streaming_equals_batch(case):
    seed, n_sensors, length, config = case
    from repro.core import StreamingCAD

    series = random_mts(seed, n_sensors, length)
    batch = CAD(config, n_sensors).detect(series)
    stream = StreamingCAD(config, n_sensors)
    records = stream.push_many(series.values)
    assert [r.n_variations for r in records] == [
        r.n_variations for r in batch.rounds
    ]
    assert [r.abnormal for r in records] == [r.abnormal for r in batch.rounds]
