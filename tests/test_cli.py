"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect", "--dataset", "psm-sim"])
        assert args.theta is None
        assert args.top_causes == 5

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "nope"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_datasets_lists_everything(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "psm-sim" in out
        assert "is5-sim" in out
        assert "1266 sensors" in out

    def test_generate_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "data.npz"
        assert main(["generate", "--dataset", "smd-sim-02", "--out", str(out_path)]) == 0
        assert out_path.exists()
        from repro.datasets import load_dataset_file

        dataset = load_dataset_file(out_path)
        assert dataset.name == "smd-sim-02"

    def test_detect_prints_scores(self, capsys):
        assert main(["detect", "--dataset", "smd-sim-02", "--theta", "0.12"]) == 0
        out = capsys.readouterr().out
        assert "F1_PA" in out
        assert "F1_DPA" in out

    def test_compare_small(self, capsys):
        assert main(
            ["compare", "--dataset", "smd-sim-02", "--methods", "ECOD,HBOS"]
        ) == 0
        out = capsys.readouterr().out
        assert "ECOD" in out and "HBOS" in out


class TestRunCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["run", "--dataset", "psm-sim"])
        assert not args.supervised
        assert args.max_retries == 3
        assert args.deadline is None
        assert args.checkpoint_every == 50
        assert args.checkpoint_dir is None
        assert args.quarantine_after == 3
        assert args.health_out is None

    def test_dataset_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_bad_fault_rate_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--dataset", "psm-sim", "--fault-rate", "1.5"])

    def test_unsupervised_run(self, capsys):
        assert main(["run", "--dataset", "smd-sim-02"]) == 0
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_supervised_run_writes_health_and_checkpoints(self, tmp_path, capsys):
        health_path = tmp_path / "health.json"
        checkpoint_dir = tmp_path / "ckpts"
        code = main(
            [
                "run",
                "--dataset",
                "smd-sim-02",
                "--supervised",
                "--checkpoint-every",
                "200",
                "--checkpoint-dir",
                str(checkpoint_dir),
                "--health-out",
                str(health_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "health" in out

        import json

        health = json.loads(health_path.read_text())
        assert health["rounds_completed"] > 0
        assert health["healthy"] is True
        assert list(checkpoint_dir.glob("ckpt-*.npz")), "rotation must have written"

    def test_supervised_with_faults(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "smd-sim-02",
                "--supervised",
                "--fault-rate",
                "0.01",
                "--fault-seed",
                "7",
            ]
        )
        assert code == 0
        assert "health" in capsys.readouterr().out
