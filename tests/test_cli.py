"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_command(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect", "--dataset", "psm-sim"])
        assert args.theta is None
        assert args.top_causes == 5

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "--dataset", "nope"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "repro" in capsys.readouterr().out


class TestCommands:
    def test_datasets_lists_everything(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "psm-sim" in out
        assert "is5-sim" in out
        assert "1266 sensors" in out

    def test_generate_round_trip(self, tmp_path, capsys):
        out_path = tmp_path / "data.npz"
        assert main(["generate", "--dataset", "smd-sim-02", "--out", str(out_path)]) == 0
        assert out_path.exists()
        from repro.datasets import load_dataset_file

        dataset = load_dataset_file(out_path)
        assert dataset.name == "smd-sim-02"

    def test_detect_prints_scores(self, capsys):
        assert main(["detect", "--dataset", "smd-sim-02", "--theta", "0.12"]) == 0
        out = capsys.readouterr().out
        assert "F1_PA" in out
        assert "F1_DPA" in out

    def test_compare_small(self, capsys):
        assert main(
            ["compare", "--dataset", "smd-sim-02", "--methods", "ECOD,HBOS"]
        ) == 0
        out = capsys.readouterr().out
        assert "ECOD" in out and "HBOS" in out
