"""Tests for CADConfig validation and suggestion."""

import pytest

from repro.core import CADConfig


class TestValidation:
    def test_valid(self):
        config = CADConfig(window=100, step=10)
        assert config.window == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window": 1, "step": 1},
            {"window": 10, "step": 0},
            {"window": 10, "step": 10},
            {"window": 10, "step": 2, "k": 0},
            {"window": 10, "step": 2, "tau": 1.5},
            {"window": 10, "step": 2, "tau": -0.1},
            {"window": 10, "step": 2, "theta": 2.0},
            {"window": 10, "step": 2, "eta": 0.0},
            {"window": 10, "step": 2, "min_sigma": 0.0},
            {"window": 10, "step": 2, "rc_mode": "bogus"},
            {"window": 10, "step": 2, "rc_decay": 0.0},
            {"window": 10, "step": 2, "rc_window": 0},
            {"window": 10, "step": 2, "sensor_attribution": "bogus"},
            {"window": 10, "step": 2, "variation_sides": "bogus"},
            {"window": 10, "step": 2, "engine": "turbo"},
            {"window": 10, "step": 2, "corr_refresh": 0},
            {"window": 10, "step": 2, "corr_refresh": -3},
            {"window": 10, "step": 2, "n_jobs": 0},
            {"window": 10, "step": 2, "n_jobs": -2},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            CADConfig(**kwargs)

    def test_bad_engine_message_names_the_choices(self):
        with pytest.raises(
            ValueError, match="engine must be 'fast', 'delta' or 'reference'"
        ):
            CADConfig(window=10, step=2, engine="turbo")

    def test_bad_n_jobs_message_explains_minus_one(self):
        with pytest.raises(ValueError, match="n_jobs must be >= 1 or -1"):
            CADConfig(window=10, step=2, n_jobs=0)
        # -1 itself is the "all CPUs" sentinel and must stay valid.
        assert CADConfig(window=10, step=2, n_jobs=-1).n_jobs == -1

    def test_bad_corr_refresh_message(self):
        with pytest.raises(ValueError, match="corr_refresh must be >= 1"):
            CADConfig(window=10, step=2, corr_refresh=0)

    def test_frozen(self):
        config = CADConfig(window=100, step=10)
        with pytest.raises(AttributeError):
            config.window = 50


class TestEffectiveK:
    def test_caps_at_n_minus_one(self):
        config = CADConfig(window=100, step=10, k=50)
        assert config.effective_k(10) == 9

    def test_keeps_small_k(self):
        config = CADConfig(window=100, step=10, k=5)
        assert config.effective_k(100) == 5

    def test_rejects_single_sensor(self):
        with pytest.raises(ValueError):
            CADConfig(window=100, step=10).effective_k(1)


class TestSuggest:
    def test_window_ratio(self):
        config = CADConfig.suggest(10_000, 30)
        assert config.window == 150  # 0.015 |T|
        assert 2 <= config.step < config.window

    def test_step_coarsens_for_wide_networks(self):
        narrow = CADConfig.suggest(3000, 100)
        wide = CADConfig.suggest(3000, 800)
        assert wide.step >= narrow.step

    def test_short_series(self):
        config = CADConfig.suggest(40, 5)
        assert config.window <= 20
        assert config.step < config.window

    def test_k_scales_with_sensors(self):
        assert CADConfig.suggest(5000, 26).k == 10
        assert CADConfig.suggest(5000, 264).k == 20
        assert CADConfig.suggest(5000, 406).k == 30
        assert CADConfig.suggest(5000, 1266).k == 50

    def test_k_capped_for_tiny_systems(self):
        assert CADConfig.suggest(5000, 4).k == 3

    def test_overrides(self):
        config = CADConfig.suggest(5000, 26, theta=0.4, tau=0.6)
        assert config.theta == 0.4
        assert config.tau == 0.6
