"""Tests for connected components and k-NN graph / TSG construction."""

import numpy as np
import pytest

from repro.graph import (
    Graph,
    absolute_weight_graph,
    component_labels,
    connected_components,
    knn_graph,
    prune_weak_edges,
)


class TestComponents:
    def test_isolated_vertices(self):
        assert connected_components(Graph(3)) == [[0], [1], [2]]

    def test_one_component(self):
        g = Graph(4)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert connected_components(g) == [[0, 1, 2, 3]]

    def test_two_components(self):
        g = Graph(5)
        g.add_edge(0, 4)
        g.add_edge(1, 2)
        assert connected_components(g) == [[0, 4], [1, 2], [3]]

    def test_labels(self):
        g = Graph(4)
        g.add_edge(0, 2)
        assert component_labels(g) == [0, 1, 0, 2]


class TestKnnGraph:
    def corr(self):
        # 0-1 strongly positive, 2-3 strongly negative, cross terms weak.
        return np.array(
            [
                [1.0, 0.9, 0.1, 0.2],
                [0.9, 1.0, 0.15, 0.1],
                [0.1, 0.15, 1.0, -0.85],
                [0.2, 0.1, -0.85, 1.0],
            ]
        )

    def test_strong_edges_present(self):
        g = knn_graph(self.corr(), 1)
        assert g.has_edge(0, 1)
        assert g.has_edge(2, 3)

    def test_signed_weights_kept(self):
        g = knn_graph(self.corr(), 1)
        assert g.weight(2, 3) == pytest.approx(-0.85)

    def test_union_semantics(self):
        # Asymmetric top-k membership still yields the edge.
        corr = np.array(
            [
                [1.0, 0.9, 0.8],
                [0.9, 1.0, 0.85],
                [0.8, 0.85, 1.0],
            ]
        )
        g = knn_graph(corr, 1)
        # 0's top-1 is 1; 2's top-1 is 1; so edges (0,1) and (1,2) exist.
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 2)

    def test_degree_at_least_k(self):
        rng = np.random.default_rng(0)
        raw = rng.uniform(-1, 1, (10, 10))
        corr = (raw + raw.T) / 2
        np.fill_diagonal(corr, 1.0)
        g = knn_graph(corr, 3)
        for v in range(10):
            assert g.degree(v) >= 3


class TestPruning:
    def test_prune_removes_weak(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.9)
        g.add_edge(1, 2, 0.2)
        pruned = prune_weak_edges(g, 0.5)
        assert pruned.has_edge(0, 1)
        assert not pruned.has_edge(1, 2)

    def test_prune_keeps_strong_negative(self):
        g = Graph(2)
        g.add_edge(0, 1, -0.8)
        assert prune_weak_edges(g, 0.5).has_edge(0, 1)

    def test_prune_invalid_tau(self):
        with pytest.raises(ValueError):
            prune_weak_edges(Graph(2), 1.5)

    def test_absolute_weight_graph(self):
        g = Graph(2)
        g.add_edge(0, 1, -0.7)
        assert absolute_weight_graph(g).weight(0, 1) == pytest.approx(0.7)
