"""Tests for the weighted graph structure."""

import pytest

from repro.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(4)
        assert g.n_vertices == 4
        assert g.n_edges == 0

    def test_rejects_zero_vertices(self):
        with pytest.raises(ValueError):
            Graph(0)


class TestEdges:
    def test_add_and_query(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert g.weight(0, 1) == 0.5
        assert g.n_edges == 1

    def test_overwrite_weight(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 0, 0.9)
        assert g.weight(0, 1) == 0.9
        assert g.n_edges == 1

    def test_no_self_loops(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3).add_edge(1, 1)

    def test_vertex_out_of_range(self):
        with pytest.raises(ValueError):
            Graph(3).add_edge(0, 3)

    def test_remove_edge(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.remove_edge(1, 0)
        assert not g.has_edge(0, 1)
        assert g.n_edges == 0

    def test_remove_missing_edge(self):
        with pytest.raises(KeyError):
            Graph(3).remove_edge(0, 1)

    def test_weight_missing_edge(self):
        with pytest.raises(KeyError):
            Graph(3).weight(0, 2)

    def test_edges_iterated_once(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 2.0)
        g.add_edge(0, 3, 3.0)
        edges = sorted(g.edges())
        assert edges == [(0, 1, 1.0), (0, 3, 3.0), (2, 3, 2.0)]

    def test_edge_set(self):
        g = Graph(3)
        g.add_edge(2, 0)
        assert g.edge_set() == {(0, 2)}


class TestDegrees:
    def test_degree_and_weighted_degree(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        g.add_edge(0, 2, 0.25)
        assert g.degree(0) == 2
        assert g.degree(1) == 1
        assert g.weighted_degree(0) == 0.75

    def test_total_weight(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        assert g.total_weight() == 3.0

    def test_neighbors_copy(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        neighbors = g.neighbors(0)
        neighbors[2] = 99.0
        assert not g.has_edge(0, 2)


class TestCopy:
    def test_copy_is_independent(self):
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        clone = g.copy()
        clone.add_edge(1, 2, 1.0)
        assert not g.has_edge(1, 2)
        assert clone.weight(0, 1) == 0.5

    def test_repr(self):
        assert "n_vertices=3" in repr(Graph(3))
