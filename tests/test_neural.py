"""Tests for the numpy neural substrate: layers, optimisers, training."""

import numpy as np
import pytest

from repro.neural import (
    MLP,
    Adam,
    Dense,
    ReLU,
    SGD,
    Sigmoid,
    Tanh,
    iterate_minibatches,
    make_activation,
    mse,
    per_row_squared_error,
    train_reconstruction,
)


def numeric_gradient(func, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = func()
        flat[i] = original - eps
        lower = func()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(3, 5, np.random.default_rng(0))
        assert layer.forward(np.zeros((7, 3))).shape == (7, 5)

    def test_backward_before_forward(self):
        layer = Dense(3, 5, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 5)))

    def test_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, rng)
        x = rng.standard_normal((5, 4))
        target = rng.standard_normal((5, 3))

        def loss():
            return mse(layer.forward(x), target)[0]

        numeric_w = numeric_gradient(loss, layer.weight)
        numeric_b = numeric_gradient(loss, layer.bias)
        _, grad = mse(layer.forward(x), target)
        layer.grad_weight[...] = 0
        layer.grad_bias[...] = 0
        layer.backward(grad)
        np.testing.assert_allclose(layer.grad_weight, numeric_w, atol=1e-6)
        np.testing.assert_allclose(layer.grad_bias, numeric_b, atol=1e-6)

    def test_input_gradient_check(self):
        rng = np.random.default_rng(2)
        layer = Dense(4, 3, rng)
        x = rng.standard_normal((2, 4))
        target = rng.standard_normal((2, 3))

        def loss():
            return mse(layer.forward(x), target)[0]

        numeric_x = numeric_gradient(loss, x)
        _, grad = mse(layer.forward(x), target)
        layer.grad_weight[...] = 0
        layer.grad_bias[...] = 0
        analytic = layer.backward(grad)
        np.testing.assert_allclose(analytic, numeric_x, atol=1e-6)


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid])
    def test_gradient_check(self, cls):
        rng = np.random.default_rng(3)
        layer = cls()
        x = rng.standard_normal((4, 6)) + 0.1  # avoid ReLU kink at 0
        target = rng.standard_normal((4, 6))

        def loss():
            return mse(layer.forward(x), target)[0]

        numeric_x = numeric_gradient(loss, x)
        _, grad = mse(layer.forward(x), target)
        analytic = layer.backward(grad)
        np.testing.assert_allclose(analytic, numeric_x, atol=1e-5)

    def test_relu_clips(self):
        out = ReLU().forward(np.array([[-1.0, 2.0]]))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_sigmoid_range(self):
        out = Sigmoid().forward(np.array([[-100.0, 0.0, 100.0]]))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_make_activation_unknown(self):
        with pytest.raises(ValueError):
            make_activation("swish")


class TestMLP:
    def test_needs_two_sizes(self):
        with pytest.raises(ValueError):
            MLP([4], np.random.default_rng(0))

    def test_full_gradient_check(self):
        rng = np.random.default_rng(4)
        model = MLP([3, 5, 2], rng, activation="tanh")
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return mse(model.forward(x), target)[0]

        for param, grads in zip(model.parameters(), model.gradients()):
            grads[...] = 0.0
        _, grad = mse(model.forward(x), target)
        model.backward(grad)
        for param, analytic in zip(model.parameters(), model.gradients()):
            numeric = numeric_gradient(loss, param)
            np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_output_activation(self):
        rng = np.random.default_rng(5)
        model = MLP([3, 4, 3], rng, output_activation="sigmoid")
        out = model.forward(rng.standard_normal((10, 3)) * 10)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestOptimizers:
    def quadratic_setup(self, optimizer_cls, **kwargs):
        param = np.array([5.0, -3.0])
        grad = np.zeros(2)
        optimizer = optimizer_cls([param], [grad], **kwargs)
        for _ in range(500):
            optimizer.zero_grad()
            grad += 2 * param  # d/dp ||p||^2
            optimizer.step()
        return param

    def test_sgd_converges(self):
        param = self.quadratic_setup(SGD, lr=0.05)
        np.testing.assert_allclose(param, 0.0, atol=1e-3)

    def test_sgd_momentum_converges(self):
        param = self.quadratic_setup(SGD, lr=0.02, momentum=0.9)
        np.testing.assert_allclose(param, 0.0, atol=1e-3)

    def test_adam_converges(self):
        param = self.quadratic_setup(Adam, lr=0.05)
        np.testing.assert_allclose(param, 0.0, atol=1e-3)

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(2)], [np.zeros(3)])

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([np.zeros(2)], [np.zeros(2)], lr=-1.0)


class TestLosses:
    def test_mse_value(self):
        loss, grad = mse(np.array([[1.0, 2.0]]), np.array([[0.0, 0.0]]))
        assert loss == pytest.approx(2.5)
        np.testing.assert_allclose(grad, [[1.0, 2.0]])

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_per_row_squared_error(self):
        errors = per_row_squared_error(
            np.array([[1.0, 1.0], [0.0, 0.0]]), np.zeros((2, 2))
        )
        np.testing.assert_allclose(errors, [1.0, 0.0])


class TestTraining:
    def test_minibatches_cover_everything(self):
        data = np.arange(10).reshape(10, 1).astype(float)
        batches = list(iterate_minibatches(data, 3, np.random.default_rng(0)))
        seen = np.sort(np.concatenate(batches).ravel())
        np.testing.assert_array_equal(seen, np.arange(10))

    def test_minibatch_invalid_size(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(np.zeros((4, 1)), 0, np.random.default_rng(0)))

    def test_autoencoder_loss_decreases(self):
        rng = np.random.default_rng(6)
        latent = rng.standard_normal((100, 2))
        data = latent @ rng.standard_normal((2, 8))
        model = MLP([8, 4, 2, 4, 8], rng, activation="tanh")
        history = train_reconstruction(model, data, rng, epochs=80, lr=1e-2)
        assert history[-1] < history[0] * 0.5

    def test_callback_early_stop(self):
        rng = np.random.default_rng(7)
        model = MLP([4, 2, 4], rng)
        data = rng.standard_normal((20, 4))
        calls = []

        def callback(epoch, loss):
            calls.append(epoch)
            if epoch >= 2:
                raise StopIteration

        history = train_reconstruction(model, data, rng, epochs=50, callback=callback)
        assert len(history) == 3
