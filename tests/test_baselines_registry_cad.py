"""Tests for the method registry, the CAD adapter and sensor helpers."""

import numpy as np
import pytest

from repro.baselines import (
    CADDetector,
    METHOD_NAMES,
    deterministic_methods,
    make_detector,
    normalize_scores,
    sensors_from_scores,
)
from repro.core import CADConfig
from repro.evaluation import SensorEvent
from repro.timeseries import MultivariateTimeSeries


class TestRegistry:
    def test_all_methods_constructible(self):
        for name in METHOD_NAMES:
            detector = make_detector(name, seed=1)
            assert detector.name == name

    def test_unknown_method(self):
        with pytest.raises(KeyError):
            make_detector("Prophet")

    def test_deterministic_flags_match(self):
        deterministic = set(deterministic_methods())
        for name in METHOD_NAMES:
            detector = make_detector(name)
            assert detector.deterministic == (name in deterministic)

    def test_cad_config_passthrough(self):
        config = CADConfig(window=50, step=5)
        detector = make_detector("CAD", cad_config=config)
        assert detector.config is config


class TestCADDetector:
    def test_fit_score(self, toy_config, broken_series):
        history, test, (start, stop), affected = broken_series
        detector = CADDetector(toy_config)
        detector.fit(history)
        scores = detector.score(test)
        assert scores.shape == (test.length,)
        assert detector.last_result is not None

    def test_suggested_config_when_none(self, broken_series):
        history, test, _, _ = broken_series
        detector = CADDetector()
        detector.fit(history)
        scores = detector.score(test)
        assert scores.shape == (test.length,)

    def test_predicted_events(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        detector = CADDetector(toy_config)
        detector.fit(history)
        detector.score(test)
        events = detector.predicted_events()
        for start, stop, sensors in events:
            assert start < stop
            assert isinstance(sensors, frozenset)

    def test_predicted_events_before_score(self, toy_config):
        with pytest.raises(RuntimeError):
            CADDetector(toy_config).predicted_events()

    def test_sensor_scores_shape(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        detector = CADDetector(toy_config)
        detector.fit(history)
        matrix = detector.sensor_scores(test)
        assert matrix.shape == (12, test.length)

    def test_invalid_mark(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        detector = CADDetector(toy_config, mark="bogus")
        detector.fit(history)
        with pytest.raises(ValueError):
            detector.score(test)


class TestNormalizeScores:
    def test_range(self):
        scores = normalize_scores(np.array([3.0, 7.0, 5.0]))
        assert scores.min() == 0.0 and scores.max() == 1.0


class TestSensorsFromScores:
    def test_elevated_sensor_flagged(self):
        matrix = np.full((3, 100), 0.1)
        matrix[1, 40:60] = 1.0
        events = [SensorEvent(40, 60, frozenset({1}))]
        result = sensors_from_scores(matrix, events, ratio=2.0)
        assert result == [(40, 60, frozenset({1}))]

    def test_quiet_matrix_flags_nothing(self):
        matrix = np.full((3, 100), 0.1)
        events = [SensorEvent(40, 60, frozenset({1}))]
        result = sensors_from_scores(matrix, events)
        assert result[0][2] == frozenset()

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            sensors_from_scores(np.zeros((2, 10)), [], ratio=0.0)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            sensors_from_scores(np.zeros(10), [])
