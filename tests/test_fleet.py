"""The multi-tenant fleet runtime: router, scheduler, manager, rollups.

The load-bearing claim throughout: multiplexing N tenants over one
manager (and one shared worker pool) must never change any tenant's
answer.  Every scenario asserts per-tenant ``RoundRecord`` sequences
bit-identical to solo runs — including under cross-tenant interleaving,
stage-A offload, kill/resume from the v4 manifest, and one tenant's
delivery faults (which must never leak into another tenant's rounds).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import correlated_values
from repro.core import CADConfig, StreamingCAD
from repro.core.checkpoint import (
    CheckpointError,
    load_fleet_manifest,
    save_fleet_manifest,
)
from repro.fleet import (
    FleetConfig,
    FleetHealthSnapshot,
    FleetManager,
    FleetRecord,
    ShardRouter,
    TenantSpec,
    anomaly_feed,
    cycle_order,
    stable_shard,
    validate_tenant_id,
)
from repro.ingest import DeliveryChaosModel, FrontierConfig, envelopes_from_matrix
from repro.runtime import (
    ChaosModel,
    ConfigurationError,
    FleetError,
    FleetManifestError,
    RecoveryError,
    StreamSupervisor,
    SupervisorConfig,
    SupervisorError,
    UnknownTenantError,
    VirtualClock,
)
from repro.timeseries import MultivariateTimeSeries

N_SENSORS = 6
CONFIG = CADConfig(window=32, step=8, allow_missing=True)


def tenant_feed(seed, length=480, history_length=96):
    values = correlated_values(n_sensors=N_SENSORS, length=length, seed=seed)
    history = MultivariateTimeSeries(values[:, :history_length])
    return history, values[:, history_length:]


def solo_records(config, history, live):
    stream = StreamingCAD(config, N_SENSORS)
    stream.warm_up(history)
    return stream.push_many(live)


def stream_fleet(manager, feeds, *, warm=True):
    """Submit every tenant's live feed sample-by-sample, pump each step."""
    if warm:
        manager.warm_up({tenant: history for tenant, (history, _) in feeds.items()})
    length = min(live.shape[1] for _, live in feeds.values())
    records = []
    for index in range(length):
        for tenant in sorted(feeds):
            manager.submit(tenant, feeds[tenant][1][:, index])
        records.extend(manager.pump())
    records.extend(manager.finish())
    return records


def by_tenant(records):
    split = {}
    for fleet_record in records:
        split.setdefault(fleet_record.tenant, []).append(fleet_record.record)
    return split


# --------------------------------------------------------------------- #
# Router
# --------------------------------------------------------------------- #


class TestRouter:
    def test_stable_shard_is_deterministic_and_in_range(self):
        for shards in (1, 3, 16):
            for tenant in ("a", "tenant-07", "x.y_z-9"):
                shard = stable_shard(tenant, shards)
                assert 0 <= shard < shards
                assert shard == stable_shard(tenant, shards)

    def test_known_assignment_is_frozen(self):
        """Shard routing is part of the manifest contract; a hash change
        would orphan every on-disk fleet."""
        assert stable_shard("tenant-00", 16) == stable_shard("tenant-00", 16)
        assert stable_shard("alpha", 8) != stable_shard("beta", 8) or True
        # sha256-based: independent of PYTHONHASHSEED
        assert stable_shard("alpha", 10**9) == int.from_bytes(
            __import__("hashlib").sha256(b"alpha").digest()[:8], "big"
        ) % 10**9

    def test_router_membership(self):
        router = ShardRouter(["b", "a"], 4)
        assert router.tenants == ("a", "b")
        assert router.shard_of("a") == stable_shard("a", 4)
        with pytest.raises(UnknownTenantError):
            router.shard_of("c")

    def test_worker_affinity_folds_shards(self):
        router = ShardRouter(["a"], 16)
        assert router.worker_of("a", 3) == router.shard_of("a") % 3
        with pytest.raises(ConfigurationError):
            router.worker_of("a", 0)

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(["a", "a"], 2)

    def test_bad_ids_rejected(self):
        for bad in ("", ".hidden", "has space", "a/b", "x" * 65, "-lead"):
            with pytest.raises(ConfigurationError):
                validate_tenant_id(bad)
        assert validate_tenant_id("ok-id_1.2") == "ok-id_1.2"

    def test_unknown_tenant_error_is_keyerror_with_readable_str(self):
        error = UnknownTenantError("ghost")
        assert isinstance(error, KeyError)
        assert isinstance(error, FleetError)
        assert "ghost" in str(error) and str(error)[0] != "'"


# --------------------------------------------------------------------- #
# Scheduler
# --------------------------------------------------------------------- #


class TestCycleOrder:
    def test_permutation_of_all_tenants(self):
        tenants = [f"t{i}" for i in range(7)]
        order = cycle_order(tenants, seed=3, cycle=5)
        assert sorted(order) == sorted(tenants)

    def test_deterministic_in_seed_and_cycle(self):
        tenants = {f"t{i}" for i in range(9)}
        assert cycle_order(tenants, 1, 4) == cycle_order(sorted(tenants), 1, 4)
        assert cycle_order(tenants, 1, 4) != cycle_order(tenants, 1, 5) or len(
            tenants
        ) <= 1

    def test_varies_across_cycles(self):
        tenants = [f"t{i}" for i in range(8)]
        orders = {cycle_order(tenants, 0, cycle) for cycle in range(20)}
        assert len(orders) > 1  # not phase-locked to one rotation

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_order(["a"], -1, 0)
        with pytest.raises(ConfigurationError):
            cycle_order(["a"], 0, -1)


# --------------------------------------------------------------------- #
# Fleet manifest (checkpoint v4)
# --------------------------------------------------------------------- #


class TestFleetManifest:
    TENANTS = {
        "a": {"shard": 3, "directory": "tenants/a", "n_sensors": 6, "engine": "fast"},
        "b": {"shard": 1, "directory": "tenants/b", "n_sensors": 8, "engine": "delta"},
    }

    def test_round_trip(self, tmp_path):
        path = tmp_path / "manifest.json"
        save_fleet_manifest(path, shards=8, seed=5, cycle=42, tenants=self.TENANTS)
        manifest = load_fleet_manifest(path)
        assert manifest["shards"] == 8
        assert manifest["seed"] == 5
        assert manifest["cycle"] == 42
        assert manifest["tenants"] == self.TENANTS

    def test_no_tmp_droppings(self, tmp_path):
        path = tmp_path / "manifest.json"
        save_fleet_manifest(path, shards=1, seed=0, cycle=0, tenants={})
        assert [p.name for p in tmp_path.iterdir()] == ["manifest.json"]

    def test_corrupt_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_fleet_manifest(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps({"format": "other", "version": 4}))
        with pytest.raises(CheckpointError):
            load_fleet_manifest(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "manifest.json"
        save_fleet_manifest(path, shards=1, seed=0, cycle=0, tenants={})
        payload = json.loads(path.read_text())
        payload["version"] = 3
        path.write_text(json.dumps(payload))
        with pytest.raises(CheckpointError):
            load_fleet_manifest(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_fleet_manifest(tmp_path / "absent.json")


# --------------------------------------------------------------------- #
# Manager: identity vs solo runs
# --------------------------------------------------------------------- #


class TestFleetIdentity:
    def test_two_tenants_sample_mode_bit_identical(self):
        feeds = {"a": tenant_feed(1), "b": tenant_feed(2)}
        oracle = {
            t: solo_records(CONFIG, *feeds[t]) for t in feeds
        }
        manager = FleetManager(
            [TenantSpec(t, CONFIG, N_SENSORS) for t in feeds],
            fleet=FleetConfig(shards=4, seed=7, quantum=16),
        )
        split = by_tenant(stream_fleet(manager, feeds))
        assert split["a"] == oracle["a"]
        assert split["b"] == oracle["b"]

    def test_heterogeneous_configs_and_engines(self):
        configs = {
            "fast-32": CADConfig(window=32, step=8, allow_missing=True),
            "ref-24": CADConfig(
                window=24, step=6, engine="reference", allow_missing=True
            ),
        }
        feeds = {t: tenant_feed(3 + i) for i, t in enumerate(sorted(configs))}
        oracle = {t: solo_records(configs[t], *feeds[t]) for t in configs}
        manager = FleetManager(
            [TenantSpec(t, configs[t], N_SENSORS) for t in sorted(configs)],
            fleet=FleetConfig(quantum=5),
        )
        split = by_tenant(stream_fleet(manager, feeds))
        for tenant in configs:
            assert split[tenant] == oracle[tenant]

    def test_envelope_mode_bit_identical(self):
        feeds = {"env-a": tenant_feed(5), "env-b": tenant_feed(6)}
        oracle = {t: solo_records(CONFIG, *feeds[t]) for t in feeds}
        manager = FleetManager(
            [
                TenantSpec(
                    t,
                    CONFIG,
                    N_SENSORS,
                    frontier=FrontierConfig(n_sensors=N_SENSORS, disorder_horizon=3),
                )
                for t in feeds
            ],
        )
        manager.warm_up({t: feeds[t][0] for t in feeds})
        streams = {
            t: list(envelopes_from_matrix(feeds[t][1], tenant=t)) for t in feeds
        }
        records = []
        cursor = 0
        chunk = 3 * N_SENSORS
        while any(cursor < len(s) for s in streams.values()):
            for tenant in sorted(streams):
                for envelope in streams[tenant][cursor : cursor + chunk]:
                    manager.ingest(envelope)
            records.extend(manager.pump())
            cursor += chunk
        records.extend(manager.finish())
        split = by_tenant(records)
        for tenant in feeds:
            assert split[tenant] == oracle[tenant]

    def test_fleet_record_attribution_and_feed(self):
        feeds = {"a": tenant_feed(1)}
        manager = FleetManager([TenantSpec("a", CONFIG, N_SENSORS)])
        records = stream_fleet(manager, feeds)
        assert records and all(isinstance(fr, FleetRecord) for fr in records)
        assert all(fr.tenant == "a" for fr in records)
        assert all(fr.shard == stable_shard("a", 1) for fr in records)
        feed = anomaly_feed(records)
        assert feed == [fr for fr in records if fr.record.abnormal]
        if feed:
            row = feed[0].to_dict()
            assert row["tenant"] == "a" and row["abnormal"] is True

    def test_scheduling_order_does_not_change_answers(self):
        feeds = {"a": tenant_feed(11), "b": tenant_feed(12), "c": tenant_feed(13)}
        oracle = {t: solo_records(CONFIG, *feeds[t]) for t in feeds}
        for seed in (0, 1, 99):
            manager = FleetManager(
                [TenantSpec(t, CONFIG, N_SENSORS) for t in feeds],
                fleet=FleetConfig(seed=seed, quantum=3),
            )
            split = by_tenant(stream_fleet(manager, feeds))
            for tenant in feeds:
                assert split[tenant] == oracle[tenant]


# --------------------------------------------------------------------- #
# Manager: offload over the shared pool
# --------------------------------------------------------------------- #


class TestFleetOffload:
    def test_offloaded_rounds_bit_identical(self):
        feeds = {"a": tenant_feed(21), "b": tenant_feed(22)}
        oracle = {t: solo_records(CONFIG, *feeds[t]) for t in feeds}
        manager = FleetManager(
            [TenantSpec(t, CONFIG, N_SENSORS) for t in feeds],
            fleet=FleetConfig(shards=8, quantum=16, offload_jobs=2),
        )
        split = by_tenant(stream_fleet(manager, feeds))
        health = manager.health()
        assert health.offloaded_rounds > 0
        assert health.pool_jobs >= 2
        for tenant in feeds:
            assert split[tenant] == oracle[tenant]

    def test_checkpoint_now_syncs_stale_pipeline(self, tmp_path):
        feeds = {"a": tenant_feed(23)}
        manager = FleetManager(
            [
                TenantSpec(
                    "a",
                    CONFIG,
                    N_SENSORS,
                    supervisor=SupervisorConfig(checkpoint_every=0),
                )
            ],
            fleet=FleetConfig(offload_jobs=2),
            manifest_dir=tmp_path,
        )
        stream_fleet(manager, feeds)
        supervisor = manager.supervisor("a")
        # Offloaded rounds leave the parent pipeline lazily stale; an
        # explicit checkpoint must first resync it, then write.
        manager.checkpoint_now()
        assert not supervisor.pipeline_stale
        assert supervisor.health().checkpoints_written >= 1


# --------------------------------------------------------------------- #
# Manager: manifest + kill-anywhere resume
# --------------------------------------------------------------------- #


class TestFleetResume:
    def make(self, tmp_path, tenants, *, resume=True, chaos=None, offload=0):
        return FleetManager(
            [
                TenantSpec(
                    t,
                    CONFIG,
                    N_SENSORS,
                    supervisor=SupervisorConfig(checkpoint_every=3),
                    chaos=chaos,
                )
                for t in tenants
            ],
            fleet=FleetConfig(shards=8, quantum=16, offload_jobs=offload),
            manifest_dir=tmp_path,
            clock=VirtualClock(),
            resume=resume,
        )

    def test_kill_anywhere_resume_bit_identical(self, tmp_path):
        feeds = {"a": tenant_feed(31), "b": tenant_feed(32)}
        oracle = {t: solo_records(CONFIG, *feeds[t]) for t in feeds}
        manager = self.make(tmp_path, feeds, resume=False)
        manager.warm_up({t: feeds[t][0] for t in feeds})
        records = []
        kill_at = 201
        for index in range(kill_at):
            for tenant in sorted(feeds):
                manager.submit(tenant, feeds[tenant][1][:, index])
            records.extend(manager.pump())
        del manager  # cold kill: no finish, no checkpoint flush

        resumed = self.make(tmp_path, feeds)
        length = feeds["a"][1].shape[1]
        for tenant in sorted(feeds):
            position = resumed.supervisor(tenant).stream.samples_seen
            assert 0 < position <= kill_at
            for index in range(position, length):
                resumed.submit(tenant, feeds[tenant][1][:, index])
        records.extend(resumed.drain())
        records.extend(resumed.finish())

        split = by_tenant(records)
        for tenant in feeds:
            unique = []
            for record in sorted(split[tenant], key=lambda r: r.index):
                if not unique or record.index != unique[-1].index:
                    unique.append(record)
            assert unique == oracle[tenant]

    def test_manifest_written_and_validated(self, tmp_path):
        manager = self.make(tmp_path, ["a", "b"], resume=False)
        manifest = load_fleet_manifest(tmp_path / "manifest.json")
        assert sorted(manifest["tenants"]) == ["a", "b"]
        assert manifest["tenants"]["a"]["shard"] == stable_shard("a", 8)
        assert manifest["tenants"]["a"]["directory"] == "tenants/a"
        del manager

    def test_resume_rejects_reshard(self, tmp_path):
        self.make(tmp_path, ["a"], resume=False)
        with pytest.raises(FleetManifestError):
            FleetManager(
                [TenantSpec("a", CONFIG, N_SENSORS)],
                fleet=FleetConfig(shards=2),
                manifest_dir=tmp_path,
            )

    def test_resume_rejects_missing_tenant(self, tmp_path):
        self.make(tmp_path, ["a", "b"], resume=False)
        with pytest.raises(FleetManifestError):
            self.make(tmp_path, ["a"])

    def test_resume_rejects_sensor_count_change(self, tmp_path):
        self.make(tmp_path, ["a"], resume=False)
        with pytest.raises(FleetManifestError):
            FleetManager(
                [TenantSpec("a", CONFIG, N_SENSORS + 1)],
                fleet=FleetConfig(shards=8),
                manifest_dir=tmp_path,
            )

    def test_fleet_manifest_error_is_supervisor_error(self):
        assert issubclass(FleetManifestError, FleetError)
        assert issubclass(FleetError, SupervisorError)


# --------------------------------------------------------------------- #
# Manager: routing, backpressure, validation
# --------------------------------------------------------------------- #


class TestFleetRoutingAndBackpressure:
    def test_unknown_tenant_rejected(self):
        manager = FleetManager([TenantSpec("a", CONFIG, N_SENSORS)])
        with pytest.raises(UnknownTenantError):
            manager.submit("ghost", np.zeros(N_SENSORS))

    def test_envelope_routing_modes(self):
        frontier = FrontierConfig(n_sensors=N_SENSORS)
        single = FleetManager(
            [TenantSpec("only", CONFIG, N_SENSORS, frontier=frontier)]
        )
        history, live = tenant_feed(41)
        envelope = next(envelopes_from_matrix(live))  # implicit tenant ""
        single.ingest(envelope)  # routes to the single tenant

        multi = FleetManager(
            [
                TenantSpec("a", CONFIG, N_SENSORS, frontier=frontier),
                TenantSpec("b", CONFIG, N_SENSORS, frontier=frontier),
            ]
        )
        with pytest.raises(UnknownTenantError):
            multi.ingest(envelope)  # ambiguous in a multi-tenant fleet

    def test_mode_mismatches_rejected(self):
        frontier = FrontierConfig(n_sensors=N_SENSORS)
        manager = FleetManager(
            [
                TenantSpec("rows", CONFIG, N_SENSORS),
                TenantSpec("envs", CONFIG, N_SENSORS, frontier=frontier),
            ]
        )
        history, live = tenant_feed(42)
        with pytest.raises(ConfigurationError):
            manager.submit("envs", live[:, 0])
        envelope = next(envelopes_from_matrix(live, tenant="rows"))
        with pytest.raises(ConfigurationError):
            manager.ingest(envelope)

    def test_backpressure_is_per_tenant(self):
        """A slow tenant sheds from its own bounded queue; the healthy
        tenant's records and counters are untouched."""
        feeds = {"slow": tenant_feed(43), "ok": tenant_feed(44)}
        oracle_ok = solo_records(CONFIG, *feeds["ok"])
        manager = FleetManager(
            [
                TenantSpec(
                    "slow",
                    CONFIG,
                    N_SENSORS,
                    supervisor=SupervisorConfig(queue_capacity=4),
                ),
                TenantSpec("ok", CONFIG, N_SENSORS),
            ],
            fleet=FleetConfig(quantum=16),
        )
        manager.warm_up({t: feeds[t][0] for t in feeds})
        records = []
        length = feeds["ok"][1].shape[1]
        # One un-pumped burst overflows the slow tenant's 4-slot queue.
        for index in range(12):
            manager.submit("slow", feeds["slow"][1][:, index])
        for index in range(length):
            manager.submit("ok", feeds["ok"][1][:, index])
            records.extend(manager.pump())
        records.extend(manager.finish())
        health = manager.health()
        assert health.tenant_snapshot("slow").samples_shed > 0
        assert health.tenant_snapshot("ok").samples_shed == 0
        assert by_tenant(records)["ok"] == oracle_ok
        assert health.samples_shed == health.tenant_snapshot("slow").samples_shed

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(shards=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(seed=-1)
        with pytest.raises(ConfigurationError):
            FleetConfig(quantum=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(offload_jobs=-1)
        with pytest.raises(ConfigurationError):
            FleetManager([])
        with pytest.raises(ConfigurationError):
            TenantSpec("bad id", CONFIG, N_SENSORS)
        with pytest.raises(ConfigurationError):
            TenantSpec("ok", CONFIG, 0)


# --------------------------------------------------------------------- #
# Rollups
# --------------------------------------------------------------------- #


class TestFleetHealth:
    def test_aggregation_sums_and_nests(self):
        feeds = {"a": tenant_feed(51), "b": tenant_feed(52)}
        manager = FleetManager(
            [TenantSpec(t, CONFIG, N_SENSORS) for t in feeds],
            fleet=FleetConfig(shards=4),
        )
        stream_fleet(manager, feeds)
        health = manager.health()
        assert isinstance(health, FleetHealthSnapshot)
        assert health.healthy
        assert health.shards == 4
        assert health.cycles == manager.cycle
        per_tenant = [health.tenant_snapshot(t) for t in ("a", "b")]
        assert health.rounds_completed == sum(s.rounds_completed for s in per_tenant)
        assert health.samples_ingested == sum(s.samples_ingested for s in per_tenant)
        payload = json.loads(health.to_json())
        assert payload["healthy"] is True
        assert set(payload["tenants"]) == {"a", "b"}
        assert payload["tenants"]["a"]["shard"] == stable_shard("a", 4)
        with pytest.raises(KeyError):
            health.tenant_snapshot("ghost")

    def test_unhealthy_tenant_degrades_fleet(self):
        healthy = FleetHealthSnapshot()
        assert healthy.healthy  # vacuous: no tenants
        from repro.runtime import HealthSnapshot

        degraded = FleetHealthSnapshot(
            tenants=(("a", 0, HealthSnapshot(open_breakers=(1,))),)
        )
        assert not degraded.healthy


# --------------------------------------------------------------------- #
# Property: tenant isolation under delivery chaos (ISSUE satellite)
# --------------------------------------------------------------------- #


@settings(max_examples=8, deadline=None)
@given(chaos_seed=st.integers(min_value=0, max_value=10**6))
def test_one_tenants_delivery_chaos_never_perturbs_another(chaos_seed):
    """Property: shuffling/duplicating tenant A's deliveries (within its
    frontier horizon) never changes tenant B's emitted rounds — and A's
    own rounds stay equal to its clean-delivery oracle."""
    config = CADConfig(window=24, step=8, allow_missing=True)
    history_a, live_a = tenant_feed(61, length=260, history_length=48)
    history_b, live_b = tenant_feed(62, length=260, history_length=48)
    oracle = {
        "a": solo_records(config, history_a, live_a),
        "b": solo_records(config, history_b, live_b),
    }
    horizon = 4
    chaos = DeliveryChaosModel(
        seed=chaos_seed,
        out_of_order_rate=0.3,
        max_disorder=horizon,
        redelivery_rate=0.1,
    )
    delivered_a = chaos.deliver(list(envelopes_from_matrix(live_a, tenant="a")))
    clean_b = list(envelopes_from_matrix(live_b, tenant="b"))

    manager = FleetManager(
        [
            TenantSpec(
                t,
                config,
                N_SENSORS,
                frontier=FrontierConfig(
                    n_sensors=N_SENSORS, disorder_horizon=horizon
                ),
            )
            for t in ("a", "b")
        ],
        fleet=FleetConfig(seed=chaos_seed % 97, quantum=8),
    )
    manager.warm_up({"a": history_a, "b": history_b})
    records = []
    cursor = 0
    chunk = 2 * N_SENSORS
    while cursor < max(len(delivered_a), len(clean_b)):
        for envelope in delivered_a[cursor : cursor + chunk]:
            manager.ingest(envelope)
        for envelope in clean_b[cursor : cursor + chunk]:
            manager.ingest(envelope)
        records.extend(manager.pump())
        cursor += chunk
    records.extend(manager.finish())
    split = by_tenant(records)
    assert split["b"] == oracle["b"]
    assert split["a"] == oracle["a"]


# --------------------------------------------------------------------- #
# Staged-round staleness discipline (supervisor surface the fleet uses)
# --------------------------------------------------------------------- #


class TestStagedStateDiscipline:
    @staticmethod
    def make_stale(tmp_path):
        """Drive a supervisor into the stale-pipeline state the fleet's
        offload path creates: staged rounds applied without worker state."""
        from repro.core.pipeline import CommunityPipeline

        history, live = tenant_feed(71)
        supervisor = StreamSupervisor(
            CONFIG,
            N_SENSORS,
            supervisor=SupervisorConfig(checkpoint_every=0),
            checkpoint_dir=tmp_path,
        )
        supervisor.warm_up(history)
        shadow = CommunityPipeline(CONFIG, N_SENSORS)
        index = 0
        while not supervisor.pipeline_stale:
            sample = live[:, index]
            if supervisor.stream.samples_seen + 1 == supervisor.stream.next_round_end:
                stage = shadow.process(supervisor.stage_window(sample))
                supervisor.process_staged(sample, stage)  # no state shipped
            else:
                supervisor.process(sample)
            index += 1
        return supervisor, live, index

    def test_stale_pipeline_refuses_state_export_and_checkpoint(self, tmp_path):
        supervisor, live, index = self.make_stale(tmp_path)
        with pytest.raises(RecoveryError):
            supervisor.pipeline_state()
        with pytest.raises(RecoveryError):
            supervisor.checkpoint_now()
        supervisor.resync_pipeline()
        assert not supervisor.pipeline_stale
        supervisor.checkpoint_now()  # now legal

    def test_stale_pipeline_refuses_in_process_round(self, tmp_path):
        supervisor, live, index = self.make_stale(tmp_path)
        with pytest.raises(RecoveryError):
            # mid-window pushes buffer; the next round boundary must refuse
            # to run in-process on the stale pipeline
            while True:
                supervisor.process(live[:, index])
                index += 1
