"""Parallel offline detection must be bit-identical to sequential runs.

The chunk scheduler cuts a detection segment only at the rolling kernel's
exact-refresh anchors, so a worker's fresh kernel reproduces the sequential
kernel's float state — making ``n_jobs`` purely a throughput knob.  These
tests compare full :class:`RoundRecord` sequences (dataclass equality
covers every field, floats included), the assembled anomalies, and the
post-run detector state across job counts.
"""

import numpy as np
import pytest

from repro.core import CAD, CADConfig, StreamingCAD
from repro.core.parallel import (
    StaleWorkerCacheError,
    _chunk_bounds,
    get_worker_pool,
    pool_generation,
    resolve_jobs,
    restore_pool_generation,
    shutdown_worker_pool,
)
from repro.core.pipeline import CommunityPipeline
from repro.timeseries import MultivariateTimeSeries


def make_series(seed=0, n_sensors=9, length=1400, missing_rate=0.0):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    drivers = np.vstack(
        [
            np.sin(2 * np.pi * t / rng.uniform(18, 40) + rng.uniform(0, 6))
            for _ in range(3)
        ]
    )
    values = np.empty((n_sensors, length))
    for i in range(n_sensors):
        values[i] = (
            rng.uniform(0.8, 1.2) * drivers[i % 3]
            + 0.05 * rng.standard_normal(length)
        )
    # Correlation break on two sensors in the second half.
    lo, hi = int(0.64 * length), int(0.75 * length)
    values[0, lo:hi] = np.cos(np.linspace(0, 47, hi - lo))
    values[3, lo:hi] = np.cos(np.linspace(0, 31, hi - lo))
    allow_missing = missing_rate > 0.0
    if allow_missing:
        mask = rng.random(values.shape) < missing_rate
        values = values.copy()
        values[mask] = np.nan
        values[5, 200:600] = np.nan  # one sensor goes fully dark for a while
    return MultivariateTimeSeries(values, allow_missing=allow_missing)


def assert_state_equal(a, b):
    """Deep equality over detector state dicts (numpy arrays, NaN included)."""
    if isinstance(a, dict):
        assert isinstance(b, dict) and a.keys() == b.keys()
        for key in a:
            assert_state_equal(a[key], b[key])
    elif isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        assert np.array_equal(np.asarray(a), np.asarray(b), equal_nan=True)
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            assert_state_equal(x, y)
    elif isinstance(a, float) and isinstance(b, float) and np.isnan(a):
        assert np.isnan(b)  # NaN markers in degraded windows compare equal
    else:
        assert a == b


def make_config(**overrides):
    params = dict(
        window=70,
        step=7,
        k=4,
        tau=0.5,
        theta=0.2,
        rc_mode="window",
        rc_window=6,
        corr_refresh=8,
    )
    params.update(overrides)
    return CADConfig(**params)


class TestResolveJobs:
    def test_defaults_and_all_cpus(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(-1) >= 1

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestChunkBounds:
    def test_cuts_only_on_anchors(self):
        refresh = 8
        for start in (0, 3, 8, 13):
            bounds = _chunk_bounds(start, 50, refresh, jobs=4)
            assert bounds[0][0] == 0
            assert bounds[-1][1] == 50
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo
                assert (start + lo) % refresh == 0  # anchor-aligned cut
            total = sum(hi - lo for lo, hi in bounds)
            assert total == 50

    def test_reference_engine_splits_evenly(self):
        bounds = _chunk_bounds(0, 100, None, jobs=4)
        assert bounds[0] == (0, 7)
        assert bounds[-1][1] == 100

    def test_segment_shorter_than_refresh(self):
        assert _chunk_bounds(3, 4, 64, jobs=4) == [(0, 4)]


class TestParallelDetect:
    @pytest.mark.parametrize("n_jobs", [2, 4])
    def test_identical_to_sequential(self, n_jobs):
        series = make_series()
        sequential = CAD(make_config(), series.n_sensors)
        parallel = CAD(make_config(), series.n_sensors)
        result_seq = sequential.detect(series)
        result_par = parallel.detect(series, n_jobs=n_jobs)
        assert result_par.rounds == result_seq.rounds
        assert result_par.anomalies == result_seq.anomalies
        assert parallel.moments == sequential.moments
        # Full post-run state (kernel sums included) must match, so any
        # later streaming continues identically.
        assert_state_equal(parallel.to_state(), sequential.to_state())

    def test_identical_after_warm_up_unaligned_chunks(self):
        # Warm-up leaves the kernel mid-interval (25 rounds, refresh 8), so
        # the parallel detect's first chunk must ship live kernel state.
        series = make_series(seed=5)
        history = MultivariateTimeSeries(make_series(seed=6).values[:, :250])
        sequential = CAD(make_config(), series.n_sensors)
        parallel = CAD(make_config(), series.n_sensors)
        assert sequential.warm_up(history) == parallel.warm_up(history)
        result_seq = sequential.detect(series)
        result_par = parallel.detect(series, n_jobs=3)
        assert result_par.rounds == result_seq.rounds
        assert_state_equal(parallel.to_state(), sequential.to_state())

    def test_parallel_warm_up_identical(self):
        history = make_series(seed=7)
        sequential = CAD(make_config(), history.n_sensors)
        parallel = CAD(make_config(), history.n_sensors)
        assert sequential.warm_up(history) == parallel.warm_up(history, n_jobs=4)
        assert_state_equal(parallel.to_state(), sequential.to_state())

    def test_degraded_data_identical(self):
        series = make_series(seed=9, missing_rate=0.02)
        config = make_config(allow_missing=True)
        sequential = CAD(config, series.n_sensors)
        parallel = CAD(config, series.n_sensors)
        result_seq = sequential.detect(series)
        result_par = parallel.detect(series, n_jobs=4)
        assert result_par.rounds == result_seq.rounds
        assert any(r.quality is not None and r.quality.degraded for r in result_seq.rounds)
        assert_state_equal(parallel.to_state(), sequential.to_state())

    def test_config_n_jobs_is_used_by_default(self):
        series = make_series(seed=10, length=900)
        via_config = CAD(make_config(n_jobs=2), series.n_sensors)
        sequential = CAD(make_config(), series.n_sensors)
        assert via_config.detect(series).rounds == sequential.detect(series).rounds

    def test_reference_engine_parallel_identical(self):
        series = make_series(seed=11, length=900)
        config = make_config(engine="reference")
        sequential = CAD(config, series.n_sensors)
        parallel = CAD(config, series.n_sensors)
        assert (
            parallel.detect(series, n_jobs=3).rounds
            == sequential.detect(series).rounds
        )


class TestWorkerPool:
    """The persistent shared-memory pool: reuse, respawn, error paths."""

    def test_pool_persists_across_calls(self):
        shutdown_worker_pool()
        pool = get_worker_pool(2)
        assert get_worker_pool(2) is pool
        series = make_series(seed=22, length=900)
        CAD(make_config(), series.n_sensors).detect(series, n_jobs=2)
        assert get_worker_pool(2) is pool, "detect must reuse the pool"
        grown = get_worker_pool(3)
        assert grown is not pool and pool.closed

    def test_delta_engine_parallel_identical(self):
        series = make_series(seed=21)
        config = make_config(engine="delta")
        sequential = CAD(config, series.n_sensors)
        parallel = CAD(config, series.n_sensors)
        result_seq = sequential.detect(series)
        result_par = parallel.detect(series, n_jobs=3)
        assert result_par.rounds == result_seq.rounds
        assert result_par.anomalies == result_seq.anomalies
        # Candidate cache and warm-start state must land where a
        # sequential run would leave them.
        assert_state_equal(parallel.to_state(), sequential.to_state())

    def test_worker_death_respawns_and_stays_identical(self):
        series = make_series(seed=20)
        sequential = CAD(make_config(), series.n_sensors)
        result_seq = sequential.detect(series)
        pool = get_worker_pool(2)
        generation_before = pool.generation
        victim = pool._workers[0].process
        victim.terminate()
        victim.join()
        parallel = CAD(make_config(), series.n_sensors)
        result_par = parallel.detect(series, n_jobs=2)
        assert result_par.rounds == result_seq.rounds
        assert pool_generation() > generation_before
        assert all(w.process.is_alive() for w in pool._workers)

    def test_worker_errors_propagate_and_pool_survives(self):
        config = make_config()
        pipeline = CommunityPipeline(config, 9)
        bad_window = [np.zeros((9, config.window + 1))]
        pool = get_worker_pool(2)
        with pytest.raises(ValueError, match="shape"):
            list(pool.run_chunks(config, 9, [(pipeline.to_state(), 0, bad_window, True)]))
        # The pool must stay usable after a failed chunk.
        series = make_series(seed=23, length=900)
        sequential = CAD(make_config(), series.n_sensors)
        parallel = CAD(make_config(), series.n_sensors)
        assert (
            parallel.detect(series, n_jobs=2).rounds
            == sequential.detect(series).rounds
        )

    def test_generation_floor_is_monotonic(self):
        base = pool_generation()
        restore_pool_generation(base + 5)
        assert pool_generation() == base + 5
        restore_pool_generation(base)  # rewind attempts are ignored
        assert pool_generation() == base + 5


class TestParallelAfterRestore:
    def test_detect_after_state_round_trip(self):
        history = MultivariateTimeSeries(make_series(seed=12).values[:, :300])
        series = make_series(seed=13)
        original = CAD(make_config(), series.n_sensors)
        original.warm_up(history)
        restored = CAD.from_state(original.to_state())
        result_seq = original.detect(series)
        result_par = restored.detect(series, n_jobs=4)
        assert result_par.rounds == result_seq.rounds
        assert result_par.anomalies == result_seq.anomalies

    def test_streaming_checkpoint_then_parallel_batch(self, tmp_path):
        # A stream checkpointed mid-run, restored, and continued in batch
        # parallel mode must match the uninterrupted sequential stream.
        series = make_series(seed=14)
        split = 700
        uninterrupted = StreamingCAD(make_config(), series.n_sensors)
        records_a = uninterrupted.push_many(series.values)

        stream = StreamingCAD(make_config(), series.n_sensors)
        stream.push_many(series.values[:, :split])
        path = tmp_path / "stream.npz"
        stream.save(path)
        resumed = StreamingCAD.load(path)
        records_b = stream.push_many(series.values[:, split:])
        records_c = resumed.push_many(series.values[:, split:])
        assert records_c == records_b  # resume is bit-identical
        assert records_c == records_a[-len(records_c) :]


class TestTenantRounds:
    """Fleet-facing pool API: shard-affine tenant rounds over cached
    worker pipelines, and the slot-name uniqueness the cache depends on."""

    def test_slot_names_never_reused_across_pools(self):
        # Two pools (or a fleet restart recreating the pool) must never
        # mint the same shared-memory name: a long-lived worker can still
        # hold an attachment under the old name, and reattaching it to a
        # fresh slot's buffer would silently alias unrelated windows.
        shutdown_worker_pool()
        config = make_config()
        series = make_series(seed=31, length=700)
        names = set()
        for jobs in (2, 3, 2):
            pool = get_worker_pool(jobs)
            CAD(config, series.n_sensors).detect(series, n_jobs=jobs)
            for worker in pool._workers:
                for slot in worker.slots:
                    if slot is not None:
                        assert slot.name not in names, "slot name reused"
                        names.add(slot.name)
        shutdown_worker_pool()
        assert len(names) >= 4

    def test_cache_miss_raises_then_state_ship_heals(self):
        shutdown_worker_pool()
        config = make_config(window=40, step=8)
        n = 6
        values = make_series(seed=35, n_sensors=n, length=120).values
        windows = [np.array(values[:, i * 8 : i * 8 + 40]) for i in range(8)]
        local = CommunityPipeline(config, n)
        seed_state = local.to_state()
        pool = get_worker_pool(2)
        try:
            # A worker that has never seen this tenant refuses to guess.
            task = pool.submit_tenant_round(
                1, config, n, tenant="tr-a", windows=[windows[0]]
            )
            with pytest.raises(StaleWorkerCacheError):
                pool.collect(task)
            # Ship state once; every later round rides the worker cache.
            task = pool.submit_tenant_round(
                1, config, n,
                tenant="tr-a", windows=[windows[0]], pipeline_state=seed_state,
            )
            pool.collect(task)
            for window in windows[1:-1]:
                pool.collect(
                    pool.submit_tenant_round(
                        1, config, n, tenant="tr-a", windows=[window]
                    )
                )
            task = pool.submit_tenant_round(
                1, config, n,
                tenant="tr-a", windows=[windows[-1]], return_state=True,
            )
            _, state_after = pool.collect(task)
            for window in windows:
                local.process(np.array(window))
            assert_state_equal(state_after, local.to_state())
            # Empty-window probe: ships state back without advancing.
            task = pool.submit_tenant_round(
                1, config, n, tenant="tr-a", windows=[], return_state=True
            )
            stages, probed = pool.collect(task)
            assert stages == []
            assert_state_equal(probed, state_after)
        finally:
            shutdown_worker_pool()

    def test_reference_engine_needs_no_cache(self):
        shutdown_worker_pool()
        config = make_config(window=40, step=8, engine="reference")
        n = 6
        window = np.array(make_series(seed=36, n_sensors=n, length=40).values)
        pool = get_worker_pool(2)
        try:
            task = pool.submit_tenant_round(
                0, config, n, tenant="tr-ref", windows=[window]
            )
            stages, state = pool.collect(task)  # no StaleWorkerCacheError
            assert len(stages) == 1 and state is None
        finally:
            shutdown_worker_pool()
