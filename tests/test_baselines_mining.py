"""Tests for the data-mining baselines: LOF, ECOD, IForest."""

import numpy as np
import pytest

from repro.baselines import ECOD, LOF, IsolationForest, average_path_length
from repro.timeseries import MultivariateTimeSeries


def clean_series(seed=0, n=4, length=600):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = np.sin(2 * np.pi * t / 25)
    return np.vstack(
        [base * rng.uniform(0.8, 1.2) + 0.1 * rng.standard_normal(length) for _ in range(n)]
    )


def spiked_test(seed=1, n=4, length=400, spike_at=(200, 220)):
    values = clean_series(seed, n, length)
    values[0, spike_at[0] : spike_at[1]] += 8.0
    return values, spike_at


@pytest.fixture
def train():
    return MultivariateTimeSeries(clean_series())


@pytest.fixture
def spiked():
    values, span = spiked_test()
    return MultivariateTimeSeries(values), span


@pytest.mark.parametrize("detector_cls", [LOF, ECOD, IsolationForest])
class TestCommonBehaviour:
    def test_scores_shape_and_range(self, detector_cls, train, spiked):
        test, _ = spiked
        detector = detector_cls().fit(train)
        scores = detector.score(test)
        assert scores.shape == (test.length,)
        assert scores.min() >= 0.0 and scores.max() <= 1.0

    def test_spike_scores_higher(self, detector_cls, train, spiked):
        test, (start, stop) = spiked
        detector = detector_cls().fit(train)
        scores = detector.score(test)
        inside = scores[start:stop].mean()
        outside = np.concatenate([scores[:start], scores[stop:]]).mean()
        assert inside > outside * 1.5

    def test_score_before_fit(self, detector_cls, spiked):
        test, _ = spiked
        with pytest.raises(RuntimeError):
            detector_cls().score(test)


class TestLOF:
    def test_deterministic(self, train, spiked):
        test, _ = spiked
        a = LOF().fit(train).score(test)
        b = LOF().fit(train).score(test)
        np.testing.assert_array_equal(a, b)

    def test_reference_subsampling(self, spiked):
        test, _ = spiked
        big_train = MultivariateTimeSeries(clean_series(length=3000))
        detector = LOF(max_reference=500).fit(big_train)
        assert detector._reference.shape[0] == 500
        scores = detector.score(test)
        assert np.isfinite(scores).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LOF(n_neighbors=0)
        with pytest.raises(ValueError):
            LOF(n_neighbors=10, max_reference=10)

    def test_train_too_small(self):
        tiny = MultivariateTimeSeries(np.random.default_rng(0).random((3, 10)))
        with pytest.raises(ValueError):
            LOF(n_neighbors=20).fit(tiny)


class TestECOD:
    def test_deterministic(self, train, spiked):
        test, _ = spiked
        a = ECOD().fit(train).score(test)
        b = ECOD().fit(train).score(test)
        np.testing.assert_array_equal(a, b)

    def test_sensor_scores_localise(self, train, spiked):
        test, (start, stop) = spiked
        matrix = ECOD().fit(train).sensor_scores(test)
        assert matrix.shape == (test.n_sensors, test.length)
        in_event = matrix[:, start:stop].mean(axis=1)
        # The spiked sensor 0 must dominate the event window.
        assert np.argmax(in_event) == 0

    def test_sensor_count_mismatch(self, train):
        detector = ECOD().fit(train)
        other = MultivariateTimeSeries(np.zeros((2, 50)))
        with pytest.raises(ValueError):
            detector.score(other)

    def test_extreme_low_values_scored(self, train):
        values = clean_series(seed=2, length=300)
        values[1, 100:120] -= 9.0
        scores = ECOD().fit(train).score(MultivariateTimeSeries(values))
        assert scores[100:120].mean() > scores[:100].mean()


class TestIForest:
    def test_stochastic_across_seeds(self, train, spiked):
        test, _ = spiked
        a = IsolationForest(seed=0).fit(train).score(test)
        b = IsolationForest(seed=1).fit(train).score(test)
        assert not np.array_equal(a, b)

    def test_reproducible_same_seed(self, train, spiked):
        test, _ = spiked
        a = IsolationForest(seed=7).fit(train).score(test)
        b = IsolationForest(seed=7).fit(train).score(test)
        np.testing.assert_array_equal(a, b)

    def test_average_path_length(self):
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0
        # c(n) grows like 2 ln(n-1) + 2*gamma - 2(n-1)/n.
        assert 5.0 < average_path_length(256) < 12.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IsolationForest(n_estimators=0)
        with pytest.raises(ValueError):
            IsolationForest(subsample=1)
