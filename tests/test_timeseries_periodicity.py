"""Tests for dominant-period estimation."""

import numpy as np
import pytest

from repro.timeseries import estimate_mts_period, estimate_period


class TestEstimatePeriod:
    def test_clean_sinusoid(self):
        t = np.arange(600)
        series = np.sin(2 * np.pi * t / 25)
        assert estimate_period(series) == 25

    def test_noisy_sinusoid(self):
        rng = np.random.default_rng(0)
        t = np.arange(800)
        series = np.sin(2 * np.pi * t / 40) + 0.2 * rng.standard_normal(800)
        assert abs(estimate_period(series) - 40) <= 2

    def test_white_noise_falls_back_to_default(self):
        rng = np.random.default_rng(1)
        period = estimate_period(rng.standard_normal(300), default=17)
        # Noise can occasionally produce a weak peak; the default must be
        # returned when nothing peaks.
        assert 4 <= period <= 300 // 4 or period == 17

    def test_constant_series_default(self):
        assert estimate_period(np.ones(100), default=21) == 21

    def test_short_series_default(self):
        assert estimate_period(np.array([1.0, 2.0]), default=13) == 13

    def test_respects_min_period(self):
        t = np.arange(600)
        series = np.sin(2 * np.pi * t / 6)
        assert estimate_period(series, min_period=10, default=33) in (12, 18, 24, 30, 33, 36)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            estimate_period(np.zeros((2, 10)))


class TestEstimateMtsPeriod:
    def test_median_across_sensors(self):
        t = np.arange(600)
        values = np.vstack(
            [
                np.sin(2 * np.pi * t / 20),
                np.sin(2 * np.pi * t / 24),
                np.sin(2 * np.pi * t / 28),
            ]
        )
        assert estimate_mts_period(values) == 24

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            estimate_mts_period(np.zeros(10))
