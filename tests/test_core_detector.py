"""Tests for the CAD detector (Algorithms 1 and 2)."""

import numpy as np
import pytest

from repro.core import CAD, Anomaly, CADConfig, assemble_anomalies
from repro.core.result import RoundRecord
from repro.timeseries import MultivariateTimeSeries, WindowSpec


class TestBasics:
    def test_needs_two_sensors(self, toy_config):
        with pytest.raises(ValueError):
            CAD(toy_config, 1)

    def test_spec(self, toy_config):
        detector = CAD(toy_config, 12)
        assert detector.spec == WindowSpec(80, 8)

    def test_wrong_sensor_count(self, toy_config, toy_values):
        detector = CAD(toy_config, 5)
        with pytest.raises(ValueError, match="sensors"):
            detector.detect(MultivariateTimeSeries(toy_values))

    def test_window_shape_checked(self, toy_config):
        detector = CAD(toy_config, 12)
        with pytest.raises(ValueError, match="shape"):
            detector.process_window(np.zeros((12, 50)))


class TestQuietData:
    def test_no_anomalies_on_stable_correlations(self, toy_config, toy_values):
        history = MultivariateTimeSeries(toy_values[:, :1000])
        live = MultivariateTimeSeries(toy_values[:, 1000:])
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        result = detector.detect(live)
        # Stable community structure -> nearly all rounds quiet.
        abnormal = sum(record.abnormal for record in result.rounds)
        assert abnormal <= len(result.rounds) * 0.05

    def test_warm_up_counts_rounds(self, toy_config, toy_values):
        history = MultivariateTimeSeries(toy_values[:, :1000])
        detector = CAD(toy_config, 12)
        variations = detector.warm_up(history)
        expected = WindowSpec(80, 8).n_rounds(1000)
        assert len(variations) == expected
        assert detector.rounds_processed == expected


class TestAnomalyDetection:
    def test_detects_correlation_break(self, toy_config, broken_series):
        history, test, (start, stop), affected = broken_series
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        result = detector.detect(test)
        assert result.anomalies, "the correlation break must be detected"
        # At least one detected anomaly overlaps (or trails within one
        # window of) the injected span.
        margin = toy_config.window
        hits = [
            a
            for a in result.anomalies
            if a.start < stop + margin and start - margin < a.stop
        ]
        assert hits

    def test_affected_sensors_recovered(self, toy_config, broken_series):
        history, test, (start, stop), affected = broken_series
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        result = detector.detect(test)
        flagged = result.abnormal_sensors()
        assert affected & flagged, "at least one injected sensor must be flagged"

    def test_deterministic(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        outputs = []
        for _ in range(2):
            detector = CAD(toy_config, 12)
            detector.warm_up(history)
            result = detector.detect(test)
            outputs.append(
                [(a.start, a.stop, tuple(sorted(a.sensors))) for a in result.anomalies]
            )
        assert outputs[0] == outputs[1]

    def test_detect_without_warmup(self, toy_config, broken_series):
        _, test, _, _ = broken_series
        detector = CAD(toy_config, 12)
        result = detector.detect(test)
        assert len(result.rounds) == WindowSpec(80, 8).n_rounds(test.length)

    def test_reset(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        detector.reset()
        assert detector.rounds_processed == 0
        assert detector.moments == (0.0, 0.0)


class TestRoundRecords:
    def test_records_rebased(self, toy_config, broken_series):
        history, test, _, _ = broken_series
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        result = detector.detect(test)
        assert result.rounds[0].index == 0
        assert result.rounds[0].start == 0
        assert result.rounds[-1].stop <= test.length

    def test_moments_are_pre_push(self, toy_config, toy_values):
        """Each record's mean/std must exclude the round's own n_r."""
        series = MultivariateTimeSeries(toy_values)
        detector = CAD(toy_config, 12)
        result = detector.detect(series)
        running = []
        for record in result.rounds:
            if running:
                assert record.mean == pytest.approx(np.mean(running))
            running.append(record.n_variations)


class TestAssembleAnomalies:
    def spec(self):
        return WindowSpec(10, 2)

    def record(self, index, abnormal, variations=frozenset(), outliers=frozenset()):
        start, stop = self.spec().round_span(index)
        return RoundRecord(
            index=index,
            start=start,
            stop=stop,
            n_variations=len(variations),
            mean=0.0,
            std=1.0,
            deviation=2.0 if abnormal else 0.0,
            abnormal=abnormal,
            outliers=frozenset(outliers),
            variations=frozenset(variations),
            n_communities=2,
        )

    def test_merges_consecutive_rounds(self):
        records = [
            self.record(0, False),
            self.record(1, True, {1}),
            self.record(2, True, {2}),
            self.record(3, False),
        ]
        anomalies = assemble_anomalies(records, self.spec())
        assert len(anomalies) == 1
        assert anomalies[0].rounds == (1, 2)
        assert anomalies[0].sensors == frozenset({1, 2})

    def test_splits_on_gap(self):
        records = [
            self.record(0, True, {1}),
            self.record(1, False),
            self.record(2, True, {2}),
        ]
        anomalies = assemble_anomalies(records, self.spec())
        assert len(anomalies) == 2

    def test_flushes_trailing(self):
        records = [self.record(0, True, {3})]
        anomalies = assemble_anomalies(records, self.spec())
        assert len(anomalies) == 1

    def test_outlier_attribution(self):
        records = [self.record(0, True, {1}, outliers={1, 5})]
        transitions = assemble_anomalies(records, self.spec(), attribution="transitions")
        literal = assemble_anomalies(records, self.spec(), attribution="outliers")
        assert transitions[0].sensors == frozenset({1})
        assert literal[0].sensors == frozenset({1, 5})

    def test_invalid_attribution(self):
        with pytest.raises(ValueError):
            assemble_anomalies([], self.spec(), attribution="bogus")

    def test_span_from_fresh_start_to_window_end(self):
        records = [self.record(2, True, {1}), self.record(3, True, {1})]
        anomaly = assemble_anomalies(records, self.spec())[0]
        assert anomaly.start == self.spec().fresh_span(2)[0]
        assert anomaly.stop == self.spec().round_span(3)[1]


class TestAnomalyDataclass:
    def test_rejects_non_consecutive_rounds(self):
        with pytest.raises(ValueError, match="consecutive"):
            Anomaly(sensors=frozenset({1}), rounds=(1, 3), start=0, stop=10)

    def test_rejects_empty_rounds(self):
        with pytest.raises(ValueError):
            Anomaly(sensors=frozenset({1}), rounds=(), start=0, stop=10)

    def test_rejects_bad_span(self):
        with pytest.raises(ValueError):
            Anomaly(sensors=frozenset({1}), rounds=(1,), start=10, stop=10)
