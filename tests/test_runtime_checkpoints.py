"""Rotated checkpoint generations: atomic writes, pruning, fall-back recovery."""

import json

import pytest

from tests.conftest import correlated_values
from repro.core import CADConfig, CheckpointError, StreamingCAD
from repro.runtime import ChaosModel, CheckpointRotation


@pytest.fixture
def stream():
    config = CADConfig(window=40, step=10, allow_missing=True)
    stream = StreamingCAD(config, 6)
    stream.push_many(correlated_values(n_sensors=6, length=160, seed=3))
    return stream


def advance(stream: StreamingCAD, t: int, seed: int) -> None:
    stream.push_many(correlated_values(n_sensors=6, length=t, seed=seed))


class TestWrite:
    def test_write_creates_archive_and_sidecar(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=2)
        generation = rotation.write(stream, 12, {"marker": 1})
        assert generation.path.exists() and generation.sidecar.exists()
        payload = json.loads(generation.sidecar.read_text())
        assert payload["samples_seen"] == stream.samples_seen
        assert payload["runtime"] == {"marker": 1}

    def test_no_tmp_droppings(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=2)
        rotation.write(stream, 12, {})
        assert not list(tmp_path.glob("*.tmp"))

    def test_prune_keeps_newest(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=2)
        for round_index in (10, 20, 30, 40):
            rotation.write(stream, round_index, {})
        generations = rotation.generations()
        assert [g.round_index for g in generations] == [40, 30]
        assert len(list(tmp_path.glob("ckpt-*.npz"))) == 2

    def test_negative_round_rejected(self, stream, tmp_path):
        with pytest.raises(ValueError):
            CheckpointRotation(tmp_path).write(stream, -1, {})

    def test_keep_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointRotation(tmp_path, keep=0)


class TestRecover:
    def test_empty_directory_recovers_nothing(self, tmp_path):
        assert CheckpointRotation(tmp_path).recover() is None

    def test_recovers_newest(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=3)
        rotation.write(stream, 12, {"gen": "old"})
        advance(stream, 50, seed=4)
        rotation.write(stream, 17, {"gen": "new"})
        recovered = rotation.recover()
        assert recovered is not None
        assert recovered.generation.round_index == 17
        assert recovered.runtime_state == {"gen": "new"}
        assert recovered.stream.samples_seen == stream.samples_seen
        assert recovered.skipped == ()

    def test_falls_back_past_corrupt_archive(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=3)
        rotation.write(stream, 12, {"gen": "old"})
        old_samples = stream.samples_seen
        advance(stream, 50, seed=4)
        newest = rotation.write(stream, 17, {"gen": "new"})
        with open(newest.path, "r+b") as handle:  # tear the newest archive
            handle.truncate(newest.path.stat().st_size // 2)
        recovered = rotation.recover()
        assert recovered is not None
        assert recovered.generation.round_index == 12
        assert recovered.stream.samples_seen == old_samples
        assert newest.path in recovered.skipped

    def test_falls_back_past_corrupt_sidecar(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=3)
        rotation.write(stream, 12, {})
        advance(stream, 50, seed=4)
        newest = rotation.write(stream, 17, {})
        newest.sidecar.write_text("{ not json")
        recovered = rotation.recover()
        assert recovered is not None
        assert recovered.generation.round_index == 12
        assert newest.sidecar in recovered.skipped

    def test_all_generations_corrupt_recovers_nothing(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=3)
        for round_index in (10, 20):
            generation = rotation.write(stream, round_index, {})
            generation.path.write_bytes(b"junk")
        assert rotation.recover() is None

    def test_samples_seen_mismatch_is_rejected(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=3)
        generation = rotation.write(stream, 12, {})
        payload = json.loads(generation.sidecar.read_text())
        payload["samples_seen"] += 1  # sidecar and archive disagree
        generation.sidecar.write_text(json.dumps(payload))
        assert rotation.recover() is None

    def test_foreign_files_ignored(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=3)
        (tmp_path / "notes.txt").write_text("not a checkpoint")
        (tmp_path / "ckpt-12.npz").write_bytes(b"bad name, not 10 digits")
        rotation.write(stream, 12, {})
        assert len(rotation.generations()) == 1

    def test_recovered_stream_is_bit_identical(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=1)
        rotation.write(stream, 12, {})
        recovered = rotation.recover()
        fresh = correlated_values(n_sensors=6, length=120, seed=9)
        original_records = stream.push_many(fresh)
        recovered_records = recovered.stream.push_many(fresh)
        assert original_records == recovered_records


class TestMinCoveredSamples:
    def test_tracks_oldest_readable_generation(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=2)
        first = stream.samples_seen
        rotation.write(stream, 12, {})
        advance(stream, 50, seed=4)
        rotation.write(stream, 17, {})
        assert rotation.min_covered_samples() == first

    def test_empty_is_zero(self, tmp_path):
        assert CheckpointRotation(tmp_path).min_covered_samples() == 0


class TestChaosCorruption:
    def test_corrupt_file_defeats_load(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=1)
        generation = rotation.write(stream, 12, {})
        chaos = ChaosModel(seed=1, corrupt_rate=0.5)
        chaos.corrupt_file(generation.path, 12)
        from repro.core import load_checkpoint

        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(generation.path)
        assert excinfo.value.path == generation.path

    def test_corruption_is_deterministic(self, stream, tmp_path):
        rotation = CheckpointRotation(tmp_path, keep=2)
        generation = rotation.write(stream, 10, {})
        twin = tmp_path / "twin.npz"
        twin.write_bytes(generation.path.read_bytes())
        chaos = ChaosModel(seed=7, corrupt_rate=0.5)
        chaos.corrupt_file(generation.path, 10)
        chaos.corrupt_file(twin, 10)  # same round key + same size -> same tear
        assert generation.path.read_bytes() == twin.read_bytes()

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            ChaosModel(crash_rate=1.0)
        with pytest.raises(ValueError):
            ChaosModel(crash_rate=0.6, slow_rate=0.5)
        with pytest.raises(ValueError):
            ChaosModel(seed=-1)

    def test_round_fate_deterministic_and_rerolled_per_attempt(self):
        chaos = ChaosModel(seed=3, crash_rate=0.3, slow_rate=0.3)
        fates = [chaos.round_fate(r, 0) for r in range(200)]
        assert fates == [chaos.round_fate(r, 0) for r in range(200)]
        assert any(f == "crash" for f in fates)
        assert any(f == "slow" for f in fates)
        assert any(f is None for f in fates)
        rerolled = [chaos.round_fate(r, 1) for r in range(200)]
        assert rerolled != fates, "a retry must re-roll the fate"


class TestScanOrderIndependence:
    """``iterdir`` order is a filesystem artifact (hash order on some
    filesystems, insertion order on others); recovery decisions must not
    depend on it."""

    def test_generations_ignore_directory_listing_order(
        self, stream, tmp_path, monkeypatch
    ):
        from pathlib import Path

        rotation = CheckpointRotation(tmp_path, keep=8)
        for round_index, seed in ((3, 11), (12, 12), (7, 13), (25, 14)):
            advance(stream, 30, seed)
            rotation.write(stream, round_index, {"samples_seen": stream.samples_seen})
        baseline = rotation.generations()
        baseline_recover = rotation.recover()
        assert baseline_recover is not None

        real_iterdir = Path.iterdir

        def adversarial(self):
            entries = list(real_iterdir(self))
            # worst case: newest generation listed first, then a rotation
            entries.reverse()
            return iter(entries[2:] + entries[:2])

        monkeypatch.setattr(Path, "iterdir", adversarial)
        shuffled = rotation.generations()
        assert shuffled == baseline
        recovered = rotation.recover()
        assert recovered is not None
        assert recovered.generation == baseline_recover.generation
        assert recovered.stream.samples_seen == baseline_recover.stream.samples_seen
