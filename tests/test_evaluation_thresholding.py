"""Tests for the vectorised threshold grid search."""

import numpy as np
import pytest

from repro.evaluation import (
    adjust_predictions,
    best_f1,
    best_predictions,
    confusion,
    threshold_curves,
)


def brute_force_best_f1(scores, labels, mode, step=0.01):
    best = 0.0
    for t in np.arange(0.0, 1.0 + step / 2, step):
        predictions = (scores >= t).astype(int)
        adjusted = adjust_predictions(predictions, labels, mode)
        best = max(best, confusion(adjusted, labels).f1)
    return best


class TestAgainstBruteForce:
    @pytest.mark.parametrize("mode", ["none", "pa", "dpa"])
    def test_matches_brute_force(self, mode):
        rng = np.random.default_rng(0)
        for trial in range(5):
            labels = (rng.random(120) < 0.25).astype(int)
            scores = np.round(rng.random(120), 2)
            fast = best_f1(scores, labels, mode=mode, step=0.01)
            slow = brute_force_best_f1(scores, labels, mode)
            assert fast == pytest.approx(slow, abs=1e-12), f"trial {trial}"


class TestBehaviour:
    def test_perfect_scores(self):
        labels = np.array([0, 0, 1, 1, 0])
        scores = labels.astype(float)
        assert best_f1(scores, labels, "none") == 1.0

    def test_all_zero_scores(self):
        labels = np.array([0, 1, 0])
        scores = np.zeros(3)
        # Threshold 0 predicts everything; the best F1 is that of the
        # all-positive prediction.
        result = threshold_curves(scores, labels, "none")
        assert result.best_f1 == pytest.approx(0.5)

    def test_curves_shape(self):
        labels = np.array([0, 1, 1, 0])
        scores = np.array([0.1, 0.8, 0.6, 0.2])
        result = threshold_curves(scores, labels, "pa", step=0.1)
        assert result.thresholds.shape == result.f1.shape
        assert result.precision.shape == result.recall.shape
        assert 0 <= result.best_threshold <= 1

    def test_dpa_not_above_pa(self):
        rng = np.random.default_rng(1)
        labels = (rng.random(200) < 0.3).astype(int)
        scores = rng.random(200)
        assert best_f1(scores, labels, "dpa") <= best_f1(scores, labels, "pa") + 1e-12

    def test_best_predictions_binarise_at_best_threshold(self):
        rng = np.random.default_rng(2)
        labels = (rng.random(100) < 0.3).astype(int)
        scores = rng.random(100)
        result = threshold_curves(scores, labels, "pa")
        predictions = best_predictions(scores, labels, "pa")
        np.testing.assert_array_equal(
            predictions, (scores >= result.best_threshold).astype(int)
        )

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            best_f1(np.zeros(3), np.zeros(3), "bogus")

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            threshold_curves(np.zeros(3), np.zeros(3), "pa", step=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            best_f1(np.zeros(3), np.zeros(4))

    def test_no_anomalies_in_labels(self):
        scores = np.array([0.2, 0.9, 0.4])
        labels = np.zeros(3, dtype=int)
        assert best_f1(scores, labels, "pa") == 0.0
