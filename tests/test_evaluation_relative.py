"""Tests for the Ahead / Miss relative measures (paper Section V)."""

import numpy as np
import pytest

from repro.evaluation import ahead_miss, outperform_fractions


@pytest.fixture
def figure3_pair():
    """Paper Figure 3: M1 detects anomaly 1 first, M2 anomaly 2 first."""
    gt = np.zeros(12, dtype=int)
    gt[2:5] = 1
    gt[6:9] = 1
    m1 = np.zeros(12, dtype=int)
    m1[2] = 1  # first point of anomaly 1
    m1[8] = 1  # last point of anomaly 2
    m2 = np.zeros(12, dtype=int)
    m2[4] = 1  # last point of anomaly 1
    m2[6] = 1  # first point of anomaly 2
    return gt, m1, m2


class TestFigure3:
    def test_m1_ahead_fifty_percent(self, figure3_pair):
        gt, m1, m2 = figure3_pair
        result = ahead_miss(m1, m2, gt)
        assert result.ahead == pytest.approx(0.5)
        assert result.miss == 0.0
        assert result.n_detected == 2
        assert result.n_anomalies == 2

    def test_symmetry(self, figure3_pair):
        gt, m1, m2 = figure3_pair
        forward = ahead_miss(m1, m2, gt)
        backward = ahead_miss(m2, m1, gt)
        assert forward.ahead == backward.ahead == pytest.approx(0.5)


class TestEdgeCases:
    def test_m1_detects_all_m2_nothing(self):
        gt = np.array([0, 1, 1, 0, 1, 0])
        m1 = np.array([0, 1, 0, 0, 1, 0])
        m2 = np.zeros(6, dtype=int)
        result = ahead_miss(m1, m2, gt)
        assert result.ahead == 1.0  # ahead of a miss counts
        assert result.miss == 0.0

    def test_m1_detects_nothing(self):
        gt = np.array([0, 1, 1, 0])
        m1 = np.zeros(4, dtype=int)
        m2 = np.array([0, 1, 0, 0])
        result = ahead_miss(m1, m2, gt)
        assert result.ahead == 0.0
        assert result.miss == 1.0

    def test_miss_zero_when_all_detected(self):
        gt = np.array([1, 1, 0])
        m1 = np.array([1, 0, 0])
        m2 = np.array([1, 0, 0])
        result = ahead_miss(m1, m2, gt)
        assert result.miss == 0.0

    def test_simultaneous_detection_is_not_ahead(self):
        gt = np.array([0, 1, 1, 0])
        m = np.array([0, 1, 0, 0])
        result = ahead_miss(m, m, gt)
        assert result.ahead == 0.0

    def test_both_missing_not_counted(self):
        gt = np.array([1, 1, 0, 1, 1])
        m1 = np.array([1, 0, 0, 0, 0])
        m2 = np.array([0, 1, 0, 0, 0])
        result = ahead_miss(m1, m2, gt)
        # Anomaly 2 missed by both: no miss charge for M1.
        assert result.miss == 0.0
        assert result.ahead == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ahead_miss(np.zeros(3), np.zeros(4), np.zeros(3))


class TestOutperformFractions:
    def test_counts(self):
        from repro.evaluation import AheadMiss

        pairs = [
            AheadMiss(0.8, 0.1, 2, 2, 1, 0),
            AheadMiss(0.3, 0.6, 2, 1, 1, 1),
        ]
        ratios = np.array([0.0, 0.5, 1.0])
        ahead_counts, miss_counts = outperform_fractions(pairs, ratios)
        np.testing.assert_array_equal(ahead_counts, [2, 1, 0])
        np.testing.assert_array_equal(miss_counts, [0, 1, 2])
