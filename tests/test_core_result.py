"""Tests for DetectionResult's point-level projections."""

import numpy as np
import pytest

from repro.core import CAD, DetectionResult
from repro.core.result import RoundRecord
from repro.timeseries import MultivariateTimeSeries, WindowSpec


def record(index, spec, abnormal, deviation, sensors=frozenset()):
    start, stop = spec.round_span(index)
    return RoundRecord(
        index=index,
        start=start,
        stop=stop,
        n_variations=len(sensors),
        mean=0.0,
        std=1.0,
        deviation=deviation,
        abnormal=abnormal,
        outliers=frozenset(sensors),
        variations=frozenset(sensors),
        n_communities=1,
    )


@pytest.fixture
def result():
    spec = WindowSpec(10, 2)
    records = [
        record(0, spec, False, 0.1),
        record(1, spec, False, 0.2),
        record(2, spec, True, 2.0, {3}),
        record(3, spec, False, 0.0),
    ]
    from repro.core import assemble_anomalies

    anomalies = assemble_anomalies(records, spec)
    return DetectionResult(anomalies, records, spec, length=16, n_sensors=5)


class TestPointLabels:
    def test_fresh_marks_only_new_slice(self, result):
        labels = result.point_labels("fresh")
        # Round 2 fresh span is [12, 14).
        assert labels[12] == 1 and labels[13] == 1
        assert labels[:12].sum() == 0
        assert labels[14:].sum() == 0

    def test_window_marks_whole_window(self, result):
        labels = result.point_labels("window")
        # Round 2 window is [4, 14).
        assert labels[4:14].sum() == 10
        assert labels[:4].sum() == 0

    def test_invalid_mark(self, result):
        with pytest.raises(ValueError):
            result.point_labels("bogus")


class TestPointScores:
    def test_scores_bounded(self, result):
        scores = result.point_scores()
        assert scores.min() >= 0.0
        assert scores.max() < 1.0

    def test_deviation_one_maps_to_half(self, result):
        scores = result.point_scores()
        # Round 2 has deviation 2.0 -> squashed 2/3 at its fresh points.
        assert scores[12] == pytest.approx(2 / 3)

    def test_three_sigma_boundary_is_half(self):
        spec = WindowSpec(10, 2)
        records = [record(0, spec, True, 1.0, {0})]
        from repro.core import assemble_anomalies

        res = DetectionResult(
            assemble_anomalies(records, spec), records, spec, 12, 2
        )
        assert res.point_scores().max() == pytest.approx(0.5)

    def test_max_over_covering_rounds(self, result):
        scores = result.point_scores("window")
        # Points in round 2's window take the highest (round 2) squash.
        assert scores[10] == pytest.approx(2 / 3)


class TestSensorOutputs:
    def test_abnormal_sensors(self, result):
        assert result.abnormal_sensors() == frozenset({3})

    def test_sensor_indicator(self, result):
        np.testing.assert_array_equal(result.sensor_indicator(), [0, 0, 0, 1, 0])

    def test_variation_series(self, result):
        np.testing.assert_array_equal(result.variation_series(), [0, 0, 1, 0])

    def test_repr(self, result):
        assert "n_anomalies=1" in repr(result)


class TestScoresMatchDecisions:
    def test_labels_iff_deviation_at_least_one(self, toy_config, broken_series):
        """point_labels marks exactly the fresh spans of abnormal rounds."""
        history, test, _, _ = broken_series
        detector = CAD(toy_config, 12)
        detector.warm_up(history)
        result = detector.detect(test)
        labels = result.point_labels("fresh")
        expected = np.zeros(test.length, dtype=np.int8)
        for rec in result.rounds:
            if rec.abnormal:
                a, b = result.spec.fresh_span(rec.index)
                expected[a : min(b, test.length)] = 1
        np.testing.assert_array_equal(labels, expected)
