"""Tests for the delta round engine: incremental TSG + warm-started Louvain.

Three contracts, in increasing order of integration:

1. :class:`DeltaTSGBuilder` must emit CSR arrays bit-identical to the
   from-scratch ``tsg_csr`` build every round — patched or full, clean or
   NaN-masked corr.
2. ``engine="delta"`` with the default ``louvain_verify=0`` must emit
   ``RoundRecord`` sequences bit-identical to ``engine="reference"`` (and
   ``"fast"``), including across faulted streams with NaN masking.
3. Delta state (candidate lists, warm-start labels, verify counter, pool
   generation) must round-trip through checkpoints so a kill/resume never
   diverges from the uninterrupted run.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import correlated_values
from repro.core import CADConfig, StreamingCAD, load_checkpoint, save_checkpoint
from repro.datasets import FaultModel
from repro.graph import DeltaTSGBuilder
from repro.graph.csr import louvain_labels_csr, tsg_csr
from repro.runtime import StreamSupervisor, SupervisorConfig, VirtualClock
from repro.timeseries import (
    MultivariateTimeSeries,
    RollingCorrelation,
    pearson_matrix_masked,
)

N_SENSORS = 8


def delta_config(**overrides) -> CADConfig:
    defaults = dict(
        window=48, step=8, k=4, tau=0.4, engine="delta",
        corr_refresh=16, allow_missing=True,
    )
    defaults.update(overrides)
    return CADConfig(**defaults)


def run_stream(config: CADConfig, history, live):
    stream = StreamingCAD(config, live.shape[0])
    stream.warm_up(history)
    return stream.push_many(live)


@pytest.fixture(scope="module")
def feed():
    values = correlated_values(n_sensors=N_SENSORS, length=900, seed=17)
    history = MultivariateTimeSeries(values[:, :200])
    return history, values[:, 200:]


def assert_csr_equal(got, expected):
    assert np.array_equal(got.indptr, expected.indptr)
    assert np.array_equal(got.indices, expected.indices)
    assert np.array_equal(got.weights, expected.weights)


class TestDeltaBuilder:
    """Builder-level bit-identity against the from-scratch CSR build."""

    def stream_corrs(self, seed, n=10, window=50, step=5, rounds=40):
        values = correlated_values(n_sensors=n, length=window + step * rounds,
                                   seed=seed)
        kernel = RollingCorrelation(n, window, step, refresh_every=8)
        for r in range(rounds):
            win = values[:, r * step : r * step + window]
            anchor = kernel.next_update_is_anchor
            yield anchor, kernel.update(win)

    @pytest.mark.parametrize("seed", range(3))
    def test_patched_build_matches_scratch(self, seed):
        builder = DeltaTSGBuilder(10, 3, 0.3)
        anchors = 0
        for anchor, corr in self.stream_corrs(seed):
            anchors += anchor
            assert_csr_equal(
                builder.build(corr, full=anchor), tsg_csr(corr, 3, 0.3).absolute()
            )
        assert anchors >= 4, "stream must exercise anchored full rebuilds"

    def test_nan_masked_round_then_patched(self):
        # The pipeline forces full=True on non-finite windows; the rounds
        # *after* the masked one patch from that rebuilt candidate cache.
        values = correlated_values(n_sensors=8, length=300, seed=5)
        poisoned = values[:, 100:150].copy()
        poisoned[2, 7] = np.nan
        corr_masked = pearson_matrix_masked(poisoned, 2)
        builder = DeltaTSGBuilder(8, 3, 0.3)
        kernel = RollingCorrelation(8, 50, 5, refresh_every=64)
        for r in range(8):
            corr = kernel.update(values[:, r * 5 : r * 5 + 50])
            builder.build(corr, full=(r == 0))
        assert_csr_equal(
            builder.build(corr_masked, full=True),
            tsg_csr(corr_masked, 3, 0.3).absolute(),
        )
        for r in range(8, 16):
            corr = kernel.update(values[:, r * 5 : r * 5 + 50])
            assert_csr_equal(
                builder.build(corr), tsg_csr(corr, 3, 0.3).absolute()
            )

    def test_state_round_trip_mid_stream(self):
        original = DeltaTSGBuilder(10, 3, 0.3)
        corrs = list(self.stream_corrs(9))
        for anchor, corr in corrs[:20]:
            original.build(corr, full=anchor)
        resumed = DeltaTSGBuilder.from_state(original.to_state())
        for anchor, corr in corrs[20:]:
            assert_csr_equal(
                original.build(corr, full=anchor),
                resumed.build(corr, full=anchor),
            )

    def test_from_state_validates_members(self):
        state = DeltaTSGBuilder(6, 2, 0.3).to_state()
        state["members"] = np.zeros((5, 6), dtype=bool)
        with pytest.raises(ValueError, match="shape"):
            DeltaTSGBuilder.from_state(state)
        state["members"] = np.zeros((6, 6), dtype=bool)  # 0 per row, not k
        with pytest.raises(ValueError, match="exactly k"):
            DeltaTSGBuilder.from_state(state)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="sensors"):
            DeltaTSGBuilder(1, 1, 0.3)
        with pytest.raises(ValueError, match="k must"):
            DeltaTSGBuilder(5, 5, 0.3)
        with pytest.raises(ValueError, match="tau"):
            DeltaTSGBuilder(5, 2, 1.5)


class TestDeltaEngineBitIdentity:
    """engine="delta" must never change the answer (louvain_verify=0)."""

    def test_clean_stream_matches_reference_and_fast(self, feed):
        history, live = feed
        records = {
            engine: run_stream(delta_config(engine=engine), history, live)
            for engine in ("reference", "fast", "delta")
        }
        assert len(records["delta"]) > 20
        assert records["delta"] == records["reference"]
        assert records["delta"] == records["fast"]

    def test_faulted_stream_matches_reference(self, feed):
        history, live = feed
        faults = FaultModel(
            missing_rate=0.01,
            dropout=((3, 120, 200),),
            stuck=((1, 300, 360),),
            seed=11,
        )
        corrupted = faults.apply(live)
        assert np.isnan(corrupted).any(), "scenario must exercise NaN masking"
        assert run_stream(delta_config(), history, corrupted) == run_stream(
            delta_config(engine="reference"), history, corrupted
        )

    @settings(max_examples=8, deadline=None)
    @given(
        data_seed=st.integers(0, 1000),
        fault_seed=st.integers(0, 1000),
        missing_rate=st.floats(0.0, 0.04),
        dropout_sensor=st.integers(0, N_SENSORS - 1),
    )
    def test_property_random_faulted_streams(
        self, data_seed, fault_seed, missing_rate, dropout_sensor
    ):
        values = correlated_values(n_sensors=N_SENSORS, length=500, seed=data_seed)
        history = MultivariateTimeSeries(values[:, :100])
        faults = FaultModel(
            missing_rate=missing_rate,
            dropout=((dropout_sensor, 50, 130),),
            seed=fault_seed,
        )
        live = faults.apply(values[:, 100:])
        assert run_stream(delta_config(), history, live) == run_stream(
            delta_config(engine="reference"), history, live
        )


class TestWarmStartVerification:
    """louvain_verify >= 1: warm starts, cold-emitted verification rounds."""

    def test_verify_every_round_equals_fast(self, feed):
        # V=1 verifies every round, and verification rounds emit the cold
        # result — so the whole stream must be bitwise the fast engine.
        history, live = feed
        assert run_stream(
            delta_config(louvain_verify=1), history, live
        ) == run_stream(delta_config(engine="fast"), history, live)

    @pytest.mark.parametrize("verify", [2, 5])
    def test_warm_runs_are_deterministic(self, feed, verify):
        history, live = feed
        config = delta_config(louvain_verify=verify)
        assert run_stream(config, history, live) == run_stream(
            config, history, live
        )

    def test_init_labels_validation(self):
        corr = np.corrcoef(correlated_values(n_sensors=6, length=80, seed=3))
        graph = tsg_csr(corr, 2, 0.1).absolute()
        with pytest.raises(ValueError, match="shape"):
            louvain_labels_csr(graph, init_labels=np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError, match="existing vertex"):
            louvain_labels_csr(graph, init_labels=np.full(6, 9, dtype=np.int64))

    def test_warm_start_matches_cold_from_own_partition(self):
        # Seeding Louvain with the partition it would reach anyway must
        # reproduce that partition exactly.
        corr = np.corrcoef(correlated_values(n_sensors=12, length=200, seed=8))
        graph = tsg_csr(corr, 3, 0.2).absolute()
        cold = louvain_labels_csr(graph)
        assert np.array_equal(louvain_labels_csr(graph, init_labels=cold), cold)


class TestDeltaCheckpointResume:
    """Delta state must survive kill/resume through supervisor checkpoints."""

    def test_checkpoint_round_trips_delta_and_warm_state(self, feed, tmp_path):
        history, live = feed
        config = delta_config(louvain_verify=3)
        stream = StreamingCAD(config, N_SENSORS)
        stream.warm_up(history)
        stream.push_many(live[:, :300])
        path = tmp_path / "delta.npz"
        save_checkpoint(stream, path)
        resumed = load_checkpoint(path)
        # Both copies see identical remaining samples; any lost candidate
        # cache, warm label, or verify counter would desynchronise the
        # warm/cold cadence and show up as a differing record.
        assert resumed.push_many(live[:, 300:]) == stream.push_many(live[:, 300:])

    def test_kill_resume_is_bit_identical(self, feed, tmp_path):
        history, live = feed
        config = delta_config(louvain_verify=2)
        baseline = run_stream(config, history, live)

        sup_config = SupervisorConfig(checkpoint_every=5, keep_checkpoints=3)
        first = StreamSupervisor(
            config, N_SENSORS, supervisor=sup_config,
            checkpoint_dir=tmp_path, clock=VirtualClock(),
        )
        first.warm_up(history)
        before = first.process_many(live[:, :350])
        del first  # process death

        resumed = StreamSupervisor(
            config, N_SENSORS, supervisor=sup_config,
            checkpoint_dir=tmp_path, clock=VirtualClock(),
        )
        restart = resumed.stream.samples_seen
        assert 0 < restart <= 350
        after = resumed.process_many(live[:, restart:])

        merged = {}
        for record in [*before, *after]:
            if record.index in merged:
                assert merged[record.index] == record, "re-emitted round differs"
            merged[record.index] = record
        assert [merged[r.index] for r in baseline] == baseline

    def test_pool_generation_persisted_in_sidecar(self, feed, tmp_path):
        from repro.core.parallel import pool_generation, restore_pool_generation

        restore_pool_generation(pool_generation() + 3)
        expected = pool_generation()
        history, live = feed
        supervisor = StreamSupervisor(
            delta_config(), N_SENSORS,
            supervisor=SupervisorConfig(checkpoint_every=5, keep_checkpoints=2),
            checkpoint_dir=tmp_path, clock=VirtualClock(),
        )
        supervisor.warm_up(history)
        supervisor.process_many(live[:, :200])
        assert supervisor.health().pool_generation == expected
        sidecars = sorted(tmp_path.glob("ckpt-*.json"))
        assert sidecars, "supervisor must have rotated checkpoints"
        payload = json.loads(sidecars[-1].read_text())
        assert payload["runtime"]["pool_generation"] == expected

        resumed = StreamSupervisor(
            delta_config(), N_SENSORS,
            supervisor=SupervisorConfig(checkpoint_every=5, keep_checkpoints=2),
            checkpoint_dir=tmp_path, clock=VirtualClock(),
        )
        assert resumed.health().pool_generation >= expected
