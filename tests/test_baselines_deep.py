"""Tests for the neural baselines USAD and RCoders."""

import numpy as np
import pytest

from repro.baselines import RCoders, USAD
from repro.timeseries import MultivariateTimeSeries


def correlated(seed=0, n=5, length=500):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    driver = np.sin(2 * np.pi * t / 30)
    return np.vstack(
        [driver * rng.uniform(0.7, 1.3) + 0.05 * rng.standard_normal(length) for _ in range(n)]
    )


@pytest.fixture(scope="module")
def train():
    return MultivariateTimeSeries(correlated())


@pytest.fixture(scope="module")
def anomalous():
    values = correlated(seed=3, length=400)
    values[2, 150:200] = 3.0 + 0.05 * np.random.default_rng(5).standard_normal(50)
    return MultivariateTimeSeries(values)


def small_usad(seed=0):
    return USAD(window=4, latent=4, hidden=16, epochs=6, batch_size=64, seed=seed)


def small_rcoders(seed=0):
    return RCoders(n_members=2, epochs=8, seed=seed)


class TestUSAD:
    def test_scores_shape_and_range(self, train, anomalous):
        scores = small_usad().fit(train).score(anomalous)
        assert scores.shape == (anomalous.length,)
        assert 0.0 <= scores.min() and scores.max() <= 1.0

    def test_detects_level_anomaly(self, train, anomalous):
        scores = small_usad().fit(train).score(anomalous)
        inside = scores[150:200].mean()
        outside = np.concatenate([scores[:150], scores[200:]]).mean()
        assert inside > outside

    def test_seed_reproducibility(self, train, anomalous):
        a = small_usad(seed=4).fit(train).score(anomalous)
        b = small_usad(seed=4).fit(train).score(anomalous)
        np.testing.assert_allclose(a, b)

    def test_seed_variation(self, train, anomalous):
        a = small_usad(seed=0).fit(train).score(anomalous)
        b = small_usad(seed=1).fit(train).score(anomalous)
        assert not np.allclose(a, b)

    def test_score_before_fit(self, anomalous):
        with pytest.raises(RuntimeError):
            small_usad().score(anomalous)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            USAD(window=1)
        with pytest.raises(ValueError):
            USAD(alpha=0.9, beta=0.5)


class TestRCoders:
    def test_scores_shape_and_range(self, train, anomalous):
        scores = small_rcoders().fit(train).score(anomalous)
        assert scores.shape == (anomalous.length,)
        assert 0.0 <= scores.min() and scores.max() <= 1.0

    def test_detects_level_anomaly(self, train, anomalous):
        scores = small_rcoders().fit(train).score(anomalous)
        assert scores[150:200].mean() > scores[:150].mean()

    def test_sensor_attribution(self, train, anomalous):
        matrix = small_rcoders().fit(train).sensor_scores(anomalous)
        assert matrix.shape == (anomalous.n_sensors, anomalous.length)
        in_event = matrix[:, 150:200].mean(axis=1)
        assert np.argmax(in_event) == 2

    def test_seed_reproducibility(self, train, anomalous):
        a = small_rcoders(seed=9).fit(train).score(anomalous)
        b = small_rcoders(seed=9).fit(train).score(anomalous)
        np.testing.assert_allclose(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            RCoders(n_members=0)
        with pytest.raises(ValueError):
            RCoders(latent_fraction=0.0)
