"""Tolerance helpers (repro.core.numeric) and regression tests for the
violations the R1/R2 lint rules surfaced in evaluation/ and clustering/."""

import numpy as np
import pytest

from repro.core.numeric import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    arrays_close,
    float_eq,
    float_ne,
    is_zero,
)
from repro.evaluation.ranking import average_rank, rank_scores


class TestFloatEq:
    def test_equal_values(self):
        assert float_eq(0.1 + 0.2, 0.3)

    def test_one_ulp_apart(self):
        value = 1.0 / 3.0
        assert float_eq(value, np.nextafter(value, 1.0))

    def test_meaningfully_different(self):
        assert not float_eq(0.3, 0.3001)
        assert float_ne(0.3, 0.3001)

    def test_near_zero_uses_absolute_floor(self):
        assert float_eq(0.0, DEFAULT_ABS_TOL / 2)
        assert not float_eq(0.0, 1e-6)

    def test_nan_equals_nothing(self):
        assert not float_eq(float("nan"), float("nan"))

    def test_is_zero(self):
        assert is_zero(0.0)
        assert is_zero(-DEFAULT_ABS_TOL)
        assert not is_zero(1e-9)


class TestArraysClose:
    def test_identical(self):
        a = np.linspace(0, 1, 7)
        assert arrays_close(a, a.copy())

    def test_within_tolerance(self):
        a = np.ones(5)
        assert arrays_close(a, a * (1 + DEFAULT_REL_TOL / 10))

    def test_shape_mismatch_is_not_close(self):
        assert not arrays_close(np.ones(3), np.ones(4))

    def test_nan_semantics(self):
        a = np.array([1.0, np.nan])
        assert not arrays_close(a, a)
        assert arrays_close(a, a, equal_nan=True)


class TestRankingRegression:
    """ranking.py fixes: tolerance ties (R2) and sorted iteration (R1)."""

    def test_scores_one_ulp_apart_share_a_rank(self):
        base = 0.1 + 0.2  # != 0.3 exactly
        scores = {"a": base, "b": 0.3, "c": 0.1}
        ranks = rank_scores(scores)
        # a and b are a rounding error apart: they must tie at rank 1.5,
        # not flip order depending on which engine computed them.
        assert ranks["a"] == ranks["b"] == 1.5
        assert ranks["c"] == 3.0

    def test_exact_ties_still_share_ranks(self):
        ranks = rank_scores({"x": 1.0, "y": 1.0, "z": 0.0})
        assert ranks["x"] == ranks["y"] == 1.5
        assert ranks["z"] == 3.0

    def test_average_rank_key_order_is_deterministic(self):
        # Feed the methods in two different insertion orders; the output
        # ordering must not depend on set iteration order.
        col_a = {"m3": 0.9, "m1": 0.5, "m2": 0.7}
        col_b = {"m1": 0.6, "m2": 0.8, "m3": 0.4}
        first = average_rank([col_a, col_b])
        second = average_rank([dict(reversed(col_b.items())), col_a])
        assert list(first) == sorted(first)
        assert list(second) == sorted(second)

    def test_average_rank_values_unchanged(self):
        cols = [{"a": 1.0, "b": 0.5}, {"a": 0.2, "b": 0.9}]
        result = average_rank(cols)
        assert result == {"a": 1.5, "b": 1.5}


class TestFaultModelRegression:
    """faults.py R2 fix: is_clean without float equality."""

    def test_zero_rates_are_clean(self):
        from repro.datasets.faults import FaultModel

        assert FaultModel().is_clean
        assert not FaultModel(missing_rate=0.01).is_clean
        assert not FaultModel(duplicate_rate=0.5).is_clean
        assert not FaultModel(dropout=((0, 1, 5),)).is_clean


class TestKShapeRegression:
    """kshape.py R1 fix: deterministic empty-cluster reseeding."""

    def test_kshape_repeatable(self):
        from repro.clustering.kshape import kshape

        rng_data = np.random.default_rng(3)
        data = rng_data.normal(size=(14, 24))
        # k close to n forces empty clusters, exercising the reseeding path
        # whose per-label dict the lint fix pinned to sorted order.
        first = kshape(data, k=7, rng=np.random.default_rng(11))
        second = kshape(data, k=7, rng=np.random.default_rng(11))
        assert np.array_equal(first.labels, second.labels)


@pytest.mark.parametrize("value", [0.0, 1.0, -2.5, 1e300, -1e-300])
def test_float_eq_reflexive(value):
    assert float_eq(value, value)
