"""Circuit-breaker state machine: every transition, plus bank behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import BreakerBank, BreakerPolicy, BreakerState, SensorBreaker

POLICY = BreakerPolicy(failure_threshold=3, open_rounds=4, probation_rounds=2)


def run(breaker: SensorBreaker, verdicts: str) -> BreakerState:
    """Feed a verdict string ('f' = faulty, 'c' = clean); return final state."""
    state = breaker.state
    for verdict in verdicts:
        state = breaker.record(verdict == "f")
    return state


class TestClosed:
    def test_starts_closed(self):
        assert SensorBreaker(POLICY).state is BreakerState.CLOSED

    def test_clean_rounds_stay_closed(self):
        breaker = SensorBreaker(POLICY)
        assert run(breaker, "cccccc") is BreakerState.CLOSED
        assert breaker.times_opened == 0

    def test_trips_after_threshold_consecutive_failures(self):
        breaker = SensorBreaker(POLICY)
        assert run(breaker, "ff") is BreakerState.CLOSED
        assert run(breaker, "f") is BreakerState.OPEN
        assert breaker.times_opened == 1

    def test_clean_round_resets_the_streak(self):
        breaker = SensorBreaker(POLICY)
        assert run(breaker, "ffcff") is BreakerState.CLOSED
        assert breaker.consecutive_failures == 2


class TestOpen:
    def test_cooldown_then_half_open(self):
        breaker = SensorBreaker(POLICY)
        run(breaker, "fff")  # trip
        assert run(breaker, "ccc") is BreakerState.OPEN
        assert run(breaker, "c") is BreakerState.HALF_OPEN

    def test_quarantined_only_while_open(self):
        breaker = SensorBreaker(POLICY)
        assert not breaker.quarantined
        run(breaker, "fff")
        assert breaker.quarantined
        run(breaker, "cccc")
        assert not breaker.quarantined

    def test_faulty_rounds_do_not_extend_cooldown(self):
        """The sensor is masked while OPEN; verdicts cannot restart the clock."""
        breaker = SensorBreaker(POLICY)
        run(breaker, "fff")
        assert run(breaker, "ffff") is BreakerState.HALF_OPEN


class TestHalfOpen:
    def trip_to_half_open(self) -> SensorBreaker:
        breaker = SensorBreaker(POLICY)
        run(breaker, "fff" + "c" * POLICY.open_rounds)
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_faulty_during_probation_reopens(self):
        breaker = self.trip_to_half_open()
        assert run(breaker, "f") is BreakerState.OPEN
        assert breaker.times_opened == 2
        assert breaker.rounds_open == 0, "cooldown restarts from zero"

    def test_clean_probation_closes(self):
        breaker = self.trip_to_half_open()
        assert run(breaker, "c") is BreakerState.HALF_OPEN
        assert run(breaker, "c") is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0

    def test_partial_probation_does_not_close(self):
        breaker = self.trip_to_half_open()
        assert run(breaker, "cf") is BreakerState.OPEN


class TestDisabled:
    def test_threshold_zero_never_trips(self):
        breaker = SensorBreaker(BreakerPolicy(failure_threshold=0))
        assert run(breaker, "f" * 50) is BreakerState.CLOSED
        assert breaker.times_opened == 0

    def test_enabled_property(self):
        assert not BreakerPolicy(failure_threshold=0).enabled
        assert BreakerPolicy(failure_threshold=1).enabled


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": -1},
            {"open_rounds": 0},
            {"probation_rounds": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            BreakerPolicy(**kwargs)


class TestStateRoundTrip:
    def test_survives_serialisation_mid_lifecycle(self):
        breaker = SensorBreaker(POLICY)
        run(breaker, "fffccf")  # OPEN, 3 rounds into cooldown
        clone = SensorBreaker.from_state(POLICY, breaker.to_state())
        # The clone must continue the lifecycle identically.
        for verdicts in ("c", "c", "c"):
            assert run(breaker, verdicts) is run(clone, verdicts)
        assert clone.times_opened == breaker.times_opened


class TestBank:
    def test_quarantine_mask_tracks_open_breakers(self):
        bank = BreakerBank(4, POLICY)
        for _ in range(3):
            bank.record_round(np.array([True, False, False, True]))
        assert bank.quarantine_mask().tolist() == [True, False, False, True]
        assert bank.open_sensors() == (0, 3)
        assert bank.half_open_sensors() == ()
        assert bank.total_times_opened() == 2

    def test_record_round_reports_idle_rounds(self):
        bank = BreakerBank(3, POLICY)
        assert not bank.record_round(np.zeros(3, dtype=bool))
        assert bank.record_round(np.array([True, False, False]))
        # A clean round is no longer a provable no-op: streaks must reset.
        assert bank.record_round(np.zeros(3, dtype=bool))
        assert not bank.record_round(np.zeros(3, dtype=bool))

    def test_shape_check(self):
        bank = BreakerBank(3, POLICY)
        with pytest.raises(ValueError):
            bank.record_round(np.zeros(4, dtype=bool))

    def test_bank_round_trip(self):
        bank = BreakerBank(3, POLICY)
        for _ in range(3):
            bank.record_round(np.array([True, True, False]))
        clone = BreakerBank.from_state(POLICY, bank.to_state())
        assert clone.open_sensors() == bank.open_sensors()
        assert clone.quarantine_mask().tolist() == bank.quarantine_mask().tolist()
        # Restored banks must keep honouring the idle fast path correctly:
        # sensors 0/1 are OPEN, so a clean round still advances cooldowns.
        assert clone.record_round(np.zeros(3, dtype=bool))


@settings(max_examples=60, deadline=None)
@given(verdicts=st.lists(st.booleans(), min_size=1, max_size=60))
def test_invariants_over_arbitrary_verdicts(verdicts):
    """Counter bounds hold at every step of any verdict sequence."""
    breaker = SensorBreaker(POLICY)
    opened_before = 0
    for faulty in verdicts:
        state = breaker.record(faulty)
        if state is BreakerState.CLOSED:
            assert 0 <= breaker.consecutive_failures < POLICY.failure_threshold
        elif state is BreakerState.OPEN:
            assert 0 <= breaker.rounds_open < POLICY.open_rounds
            assert breaker.quarantined
        else:
            assert 0 <= breaker.clean_probation_rounds < POLICY.probation_rounds
        assert breaker.times_opened >= opened_before
        assert breaker.times_opened - opened_before <= 1, "at most one trip per round"
        opened_before = breaker.times_opened
