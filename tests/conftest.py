"""Shared fixtures: small correlated MTS with an injected correlation break."""

import numpy as np
import pytest

from repro.core import CADConfig
from repro.timeseries import MultivariateTimeSeries


def correlated_values(
    n_sensors=12,
    length=2400,
    n_communities=3,
    seed=0,
    noise=0.05,
):
    """Community-structured sensor matrix without anomalies."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    drivers = np.vstack(
        [
            np.sin(2 * np.pi * t / rng.uniform(18, 40) + rng.uniform(0, 6))
            for _ in range(n_communities)
        ]
    )
    values = np.empty((n_sensors, length))
    for i in range(n_sensors):
        c = i % n_communities
        values[i] = (
            rng.uniform(0.8, 1.2) * drivers[c] + noise * rng.standard_normal(length)
        )
    return values


@pytest.fixture
def toy_values():
    return correlated_values()


@pytest.fixture
def broken_series():
    """(history, test, anomaly_span, affected) with a correlation break."""
    values = correlated_values(seed=1)
    rng = np.random.default_rng(99)
    start, stop = 1700, 1950
    affected = (0, 3)
    for sensor in affected:
        span = stop - start
        values[sensor, start:stop] = (
            np.cos(np.linspace(0, 53, span)) + 0.05 * rng.standard_normal(span)
        )
    history = MultivariateTimeSeries(values[:, :1000])
    test = MultivariateTimeSeries(values[:, 1000:])
    return history, test, (start - 1000, stop - 1000), frozenset(affected)


@pytest.fixture
def toy_config():
    return CADConfig(
        window=80,
        step=8,
        k=4,
        tau=0.5,
        theta=0.2,
        rc_mode="window",
        rc_window=6,
    )
