"""Property-based tests for the clustering substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering import kmeans, sbd, shift_series
from repro.clustering.sbd import sbd_to_reference

series_pair = st.integers(4, 32).flatmap(
    lambda m: st.tuples(
        arrays(np.float64, m, elements=st.floats(-10, 10, allow_nan=False)),
        arrays(np.float64, m, elements=st.floats(-10, 10, allow_nan=False)),
    )
)


@given(series_pair)
@settings(max_examples=80, deadline=None)
def test_sbd_bounds_and_symmetry_of_value(pair):
    x, y = pair
    d_xy, _ = sbd(x, y)
    d_yx, _ = sbd(y, x)
    assert -1e-9 <= d_xy <= 2 + 1e-9
    # SBD's value is symmetric (the maximising shift flips sign).
    assert abs(d_xy - d_yx) < 1e-9


@given(arrays(np.float64, st.integers(4, 32), elements=st.floats(-10, 10, allow_nan=False)))
@settings(max_examples=60, deadline=None)
def test_sbd_self_distance_zero(x):
    if np.linalg.norm(x) <= 1e-9:
        return
    d, shift = sbd(x, x)
    assert d < 1e-9
    assert shift == 0


@given(
    arrays(np.float64, st.integers(6, 24), elements=st.floats(-5, 5, allow_nan=False)),
    st.integers(-5, 5),
)
@settings(max_examples=60, deadline=None)
def test_shift_series_preserves_length(x, shift):
    shifted = shift_series(x, shift)
    assert shifted.shape == x.shape
    # The retained mass is a contiguous slice of the original.
    if shift > 0:
        np.testing.assert_array_equal(shifted[shift:], x[: x.size - shift])
    elif shift < 0:
        np.testing.assert_array_equal(shifted[:shift], x[-shift:])


@given(
    st.integers(5, 25),
    st.integers(2, 4),
    st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_kmeans_partitions_all_points(n, k, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((n, 3))
    result = kmeans(data, min(k, n), rng)
    assert result.labels.shape == (n,)
    assert result.labels.min() >= 0
    assert result.labels.max() < min(k, n)
    assert result.inertia >= 0


@given(
    st.integers(3, 12),
    st.integers(6, 20),
    st.integers(0, 500),
)
@settings(max_examples=40, deadline=None)
def test_batched_sbd_matches_pairwise(n_rows, m, seed):
    rng = np.random.default_rng(seed)
    rows = rng.standard_normal((n_rows, m))
    reference = rng.standard_normal(m)
    distances, shifts = sbd_to_reference(rows, reference)
    for i in range(n_rows):
        d, s = sbd(reference, rows[i])
        assert abs(distances[i] - d) < 1e-9
        assert shifts[i] == s
