"""Property-based tests for core data structures and algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import CoAppearanceTracker, coappearance_counts, outlier_set
from repro.core.variation import RunningMoments, outlier_variations
from repro.graph import Graph, louvain, modularity
from repro.timeseries import WindowSpec, pearson_matrix


partition_pairs = st.integers(2, 25).flatmap(
    lambda n: st.tuples(
        arrays(np.int64, n, elements=st.integers(0, 4)),
        arrays(np.int64, n, elements=st.integers(0, 4)),
    )
)


@given(partition_pairs)
@settings(max_examples=80, deadline=None)
def test_coappearance_symmetric_and_bounded(pair):
    previous, current = pair
    counts = coappearance_counts(previous, current)
    n = previous.size
    assert (counts >= 0).all()
    assert (counts <= n - 1).all()
    # Co-appearance is symmetric: summing the indicator over ordered pairs
    # gives an even total.
    assert counts.sum() % 2 == 0


@given(partition_pairs)
@settings(max_examples=40, deadline=None)
def test_coappearance_invariant_to_relabeling(pair):
    previous, current = pair
    # Shift every current label by a constant: same partition.
    np.testing.assert_array_equal(
        coappearance_counts(previous, current),
        coappearance_counts(previous, current + 7),
    )


@given(
    st.integers(2, 10).flatmap(
        lambda n: st.lists(
            arrays(np.int64, n, elements=st.integers(0, 3)),
            min_size=2,
            max_size=8,
        )
    )
)
@settings(max_examples=40, deadline=None)
def test_tracker_rc_in_unit_interval(partitions):
    n = partitions[0].size
    tracker = CoAppearanceTracker(n)
    tracker.update(partitions[0])
    for labels in partitions[1:]:
        _, rc = tracker.update(labels)
        assert (rc >= 0).all()
        assert (rc <= 1 + 1e-12).all()


@given(
    arrays(np.float64, st.integers(1, 30), elements=st.floats(0, 1)),
    st.floats(0, 1),
)
@settings(max_examples=60, deadline=None)
def test_outlier_set_monotone_in_theta(rc, theta):
    smaller = outlier_set(rc, theta / 2)
    larger = outlier_set(rc, theta)
    assert smaller <= larger


@given(
    st.sets(st.integers(0, 20)),
    st.sets(st.integers(0, 20)),
)
@settings(max_examples=60, deadline=None)
def test_outlier_variations_is_metric_like(a, b):
    a, b = frozenset(a), frozenset(b)
    assert outlier_variations(a, b) == outlier_variations(b, a)
    assert outlier_variations(a, a) == 0
    assert outlier_variations(a, b) <= len(a) + len(b)


@given(st.lists(st.floats(-100, 100), min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_running_moments_match_numpy(values):
    moments = RunningMoments()
    for value in values:
        moments.push(value)
    array = np.array(values)
    assert abs(moments.mean - array.mean()) < 1e-8 * max(1, abs(array.mean()))
    assert abs(moments.std - array.std()) < 1e-6 * max(1.0, array.std())


@given(
    st.integers(2, 30),
    st.lists(st.tuples(st.integers(0, 29), st.integers(0, 29), st.floats(0.01, 1)), max_size=60),
)
@settings(max_examples=40, deadline=None)
def test_louvain_partition_is_valid_and_nonnegative_modularity(n, edges):
    graph = Graph(n)
    for u, v, w in edges:
        if u % n != v % n:
            graph.add_edge(u % n, v % n, w)
    result = louvain(graph)
    assert len(result.labels) == n
    assert set(result.labels) == set(range(result.n_communities))
    # Louvain starts from singletons (Q can't be worse than... any single
    # move is only taken on positive gain), so the final modularity must be
    # at least the singleton partition's.
    singleton = modularity(graph, list(range(n)))
    assert result.modularity >= singleton - 1e-9


@given(
    st.integers(2, 8),
    st.integers(4, 30),
    st.integers(0, 10_000),
)
@settings(max_examples=40, deadline=None)
def test_pearson_matrix_psd_diagonal(n, w, seed):
    rng = np.random.default_rng(seed)
    window = rng.standard_normal((n, w))
    corr = pearson_matrix(window)
    np.testing.assert_allclose(corr, corr.T, atol=1e-12)
    assert (np.abs(corr) <= 1 + 1e-12).all()
    eigenvalues = np.linalg.eigvalsh(corr)
    assert eigenvalues.min() > -1e-8


@given(st.integers(2, 50), st.integers(1, 49), st.integers(50, 300))
@settings(max_examples=60, deadline=None)
def test_windowspec_round_arithmetic(window, step, length):
    if step >= window or length < window:
        return
    spec = WindowSpec(window, step)
    total = spec.n_rounds(length)
    assert total >= 1
    # Last round fits inside the series.
    assert spec.round_span(total - 1)[1] <= length
    # One more round would not fit.
    assert spec.round_span(total)[1] > length
    # Fresh spans tile [0, last_stop) exactly once.
    covered = np.zeros(length, dtype=int)
    for r in range(total):
        a, b = spec.fresh_span(r)
        covered[a:b] += 1
    assert (covered[: spec.round_span(total - 1)[1]] == 1).all()
