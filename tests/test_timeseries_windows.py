"""Tests for WindowSpec and MTS partitioning (paper Section III-B)."""

import numpy as np
import pytest

from repro.timeseries import MultivariateTimeSeries, WindowSpec, iter_windows, window_matrix


class TestWindowSpec:
    def test_valid(self):
        spec = WindowSpec(window=10, step=2)
        assert spec.window == 10
        assert spec.step == 2

    @pytest.mark.parametrize("w,s", [(1, 1), (10, 0), (10, 10), (10, 12)])
    def test_invalid(self, w, s):
        with pytest.raises(ValueError):
            WindowSpec(window=w, step=s)

    def test_n_rounds_exact(self):
        # |T| = 20, w = 10, s = 5 -> R = (20 - 10) / 5 + 1 = 3
        assert WindowSpec(10, 5).n_rounds(20) == 3

    def test_n_rounds_trims_remainder(self):
        # (23 - 10) = 13, 13 // 5 = 2 -> R = 3, last 3 points dropped.
        assert WindowSpec(10, 5).n_rounds(23) == 3

    def test_n_rounds_too_short(self):
        with pytest.raises(ValueError, match="shorter than window"):
            WindowSpec(10, 5).n_rounds(9)

    def test_round_span(self):
        spec = WindowSpec(10, 5)
        assert spec.round_span(0) == (0, 10)
        assert spec.round_span(2) == (10, 20)

    def test_round_start_negative(self):
        with pytest.raises(ValueError):
            WindowSpec(10, 5).round_start(-1)

    def test_fresh_span_round_zero_is_whole_window(self):
        assert WindowSpec(10, 5).fresh_span(0) == (0, 10)

    def test_fresh_span_later_rounds_are_step(self):
        spec = WindowSpec(10, 5)
        assert spec.fresh_span(1) == (10, 15)
        assert spec.fresh_span(2) == (15, 20)

    def test_fresh_spans_tile_the_series(self):
        spec = WindowSpec(8, 3)
        length = 8 + 3 * 6
        covered = np.zeros(length, dtype=int)
        for r in range(spec.n_rounds(length)):
            a, b = spec.fresh_span(r)
            covered[a:b] += 1
        assert (covered == 1).all()

    def test_covering_rounds(self):
        spec = WindowSpec(10, 5)
        # Point 12 lies in rounds starting at 5 and 10 -> rounds 1 and 2.
        assert list(spec.covering_rounds(12, 20)) == [1, 2]

    def test_covering_rounds_first_point(self):
        assert list(WindowSpec(10, 5).covering_rounds(0, 20)) == [0]

    def test_covering_rounds_out_of_range(self):
        with pytest.raises(ValueError):
            WindowSpec(10, 5).covering_rounds(20, 20)

    def test_covering_rounds_consistent_with_spans(self):
        spec = WindowSpec(12, 5)
        length = 60
        total = spec.n_rounds(length)
        for t in range(length):
            rounds = list(spec.covering_rounds(t, length))
            expected = [
                r for r in range(total) if spec.round_span(r)[0] <= t < spec.round_span(r)[1]
            ]
            assert rounds == expected


class TestIteration:
    def make(self, n=2, length=20):
        return MultivariateTimeSeries(
            np.arange(n * length, dtype=float).reshape(n, length)
        )

    def test_iter_windows_count_and_content(self):
        series = self.make()
        spec = WindowSpec(10, 5)
        windows = list(iter_windows(series, spec))
        assert len(windows) == 3
        np.testing.assert_array_equal(windows[1], series.values[:, 5:15])

    def test_window_matrix(self):
        series = self.make()
        spec = WindowSpec(10, 5)
        np.testing.assert_array_equal(
            window_matrix(series, spec, 2), series.values[:, 10:20]
        )

    def test_window_matrix_out_of_range(self):
        with pytest.raises(ValueError):
            window_matrix(self.make(), WindowSpec(10, 5), 3)

    def test_windows_are_views(self):
        series = self.make()
        windows = list(iter_windows(series, WindowSpec(10, 5)))
        assert all(w.base is not None for w in windows)
