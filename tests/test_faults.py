"""Fault injection: corrupted feeds must never crash the degraded-mode
pipeline, and a zero-fault model must leave detection untouched."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import CAD, StreamingCAD
from repro.datasets import (
    FaultModel,
    inject_clock_skew,
    inject_duplicates,
    inject_missing_at_random,
    inject_out_of_order,
    inject_redelivery,
    inject_sensor_dropout,
    inject_stuck_at,
)
from repro.timeseries import MultivariateTimeSeries


class TestInjectors:
    def test_missing_at_random_rate(self):
        rng = np.random.default_rng(0)
        clean = np.zeros((10, 2000))
        corrupted = inject_missing_at_random(clean, 0.1, rng)
        fraction = np.isnan(corrupted).mean()
        assert 0.07 < fraction < 0.13
        assert not np.isnan(clean).any(), "input must not be modified"

    def test_dropout_span(self):
        corrupted = inject_sensor_dropout(np.ones((4, 100)), 2, 10, 60)
        assert np.isnan(corrupted[2, 10:60]).all()
        assert np.isfinite(corrupted[2, :10]).all()
        assert np.isfinite(corrupted[[0, 1, 3], :]).all()

    def test_stuck_at_flatline(self):
        rng = np.random.default_rng(1)
        values = rng.standard_normal((3, 100))
        corrupted = inject_stuck_at(values, 1, 20, 80)
        assert (corrupted[1, 20:80] == values[1, 20]).all()
        assert np.array_equal(corrupted[1, 80:], values[1, 80:])

    def test_duplicates_repeat_previous_column(self):
        rng = np.random.default_rng(2)
        values = np.arange(2 * 500, dtype=float).reshape(2, 500)
        corrupted = inject_duplicates(values, 0.2, rng)
        duplicated = np.flatnonzero(
            (corrupted[:, 1:] == corrupted[:, :-1]).all(axis=0)
        )
        assert duplicated.size > 0
        assert corrupted.shape == values.shape

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_bad_rates_rejected(self, rate):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            inject_missing_at_random(np.zeros((2, 10)), rate, rng)
        with pytest.raises(ValueError):
            inject_duplicates(np.zeros((2, 10)), rate, rng)

    def test_bad_span_rejected(self):
        with pytest.raises(ValueError):
            inject_sensor_dropout(np.zeros((2, 10)), 5, 0, 5)
        with pytest.raises(ValueError):
            inject_stuck_at(np.zeros((2, 10)), 0, 8, 20)


class TestDeliveryInjectors:
    def test_out_of_order_is_a_bounded_permutation(self):
        rng = np.random.default_rng(7)
        values = np.arange(600, dtype=float).reshape(2, 300)
        corrupted = inject_out_of_order(values, 0.2, 5, rng)
        assert not np.array_equal(corrupted, values), "swaps must happen"
        # A permutation of columns: same multiset, columns kept intact.
        assert sorted(corrupted[0]) == sorted(values[0])
        assert np.array_equal(corrupted[1] - corrupted[0], values[1] - values[0])
        # Bounded disorder: swap chains can compound a few spans, but
        # displacement must stay local — nothing drifts across the series.
        displacement = np.abs(corrupted[0] - values[0])
        assert displacement.max() <= 4 * 5
        assert displacement.mean() < 2.0

    def test_out_of_order_deterministic_and_pure(self):
        values = np.arange(200, dtype=float).reshape(2, 100)
        a = inject_out_of_order(values, 0.3, 4, np.random.default_rng(3))
        b = inject_out_of_order(values, 0.3, 4, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert np.array_equal(values, np.arange(200, dtype=float).reshape(2, 100))

    def test_redelivery_repeats_stale_columns(self):
        rng = np.random.default_rng(8)
        values = np.arange(400, dtype=float).reshape(2, 200)
        corrupted = inject_redelivery(values, 0.15, 3, rng)
        stale = np.flatnonzero(
            (corrupted[:, 3:] == corrupted[:, :-3]).all(axis=0)
        )
        assert stale.size > 0
        untouched = corrupted == values
        assert untouched.all(axis=0).any(), "most columns stay fresh"

    def test_redelivery_lag_one_matches_duplicates_shape(self):
        rng = np.random.default_rng(9)
        values = np.arange(300, dtype=float).reshape(3, 100)
        corrupted = inject_redelivery(values, 0.1, 1, rng)
        assert corrupted.shape == values.shape

    def test_clock_skew_shifts_and_nans_the_edge(self):
        values = np.arange(40, dtype=float).reshape(2, 20)
        late = inject_clock_skew(values, 1, 3)
        assert np.isnan(late[1, :3]).all()
        assert np.array_equal(late[1, 3:], values[1, :17])
        assert np.array_equal(late[0], values[0])
        early = inject_clock_skew(values, 0, -2)
        assert np.isnan(early[0, -2:]).all()
        assert np.array_equal(early[0, :-2], values[0, 2:])

    def test_clock_skew_zero_is_identity(self):
        values = np.arange(20, dtype=float).reshape(2, 10)
        assert np.array_equal(inject_clock_skew(values, 0, 0), values)

    @pytest.mark.parametrize("rate", [-0.1, 1.0])
    def test_bad_rates_rejected(self, rate):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            inject_out_of_order(np.zeros((2, 10)), rate, 2, rng)
        with pytest.raises(ValueError):
            inject_redelivery(np.zeros((2, 10)), rate, 2, rng)

    def test_bad_bounds_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            inject_out_of_order(np.zeros((2, 10)), 0.1, 0, rng)
        with pytest.raises(ValueError):
            inject_redelivery(np.zeros((2, 10)), 0.1, 0, rng)
        with pytest.raises(ValueError):
            inject_clock_skew(np.zeros((2, 10)), 0, 10)
        with pytest.raises(ValueError):
            inject_clock_skew(np.zeros((2, 10)), 5, 1)


class TestFaultModel:
    def test_deterministic(self):
        values = np.random.default_rng(4).standard_normal((6, 400))
        model = FaultModel(missing_rate=0.05, duplicate_rate=0.02, seed=11)
        assert np.array_equal(
            model.apply(values), model.apply(values), equal_nan=True
        )

    def test_clean_model_is_identity(self):
        values = np.random.default_rng(5).standard_normal((4, 200))
        model = FaultModel()
        assert model.is_clean
        assert np.array_equal(model.apply(values), values)

    def test_compound_faults(self):
        values = np.random.default_rng(6).standard_normal((5, 300))
        model = FaultModel(
            missing_rate=0.02,
            duplicate_rate=0.01,
            dropout=((1, 50, 150),),
            stuck=((3, 100, 200),),
            seed=0,
        )
        corrupted = model.apply(values)
        assert np.isnan(corrupted[1, 50:150]).all()
        stuck_span = corrupted[3, 100:200]
        observed = stuck_span[np.isfinite(stuck_span)]
        assert (observed == observed[0]).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(missing_rate=1.0)
        with pytest.raises(ValueError):
            FaultModel(dropout=((1, 2),))

    def test_delivery_knobs_break_cleanliness(self):
        assert not FaultModel(out_of_order=0.1).is_clean
        assert not FaultModel(redelivery=0.1).is_clean
        assert not FaultModel(skew=((0, 3),)).is_clean

    def test_delivery_knobs_deterministic(self):
        values = np.random.default_rng(12).standard_normal((4, 300))
        model = FaultModel(
            out_of_order=0.1,
            out_of_order_span=3,
            redelivery=0.05,
            redelivery_lag=2,
            skew=((1, 4), (3, -2)),
            seed=6,
        )
        first = model.apply(values)
        assert np.array_equal(first, model.apply(values), equal_nan=True)
        assert not np.array_equal(first, values, equal_nan=True)

    def test_skew_knob_matches_direct_injector(self):
        values = np.random.default_rng(13).standard_normal((4, 100))
        model = FaultModel(skew=((2, 5),), seed=0)
        assert np.array_equal(
            model.apply(values), inject_clock_skew(values, 2, 5), equal_nan=True
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(out_of_order=1.0),
            dict(redelivery=-0.1),
            dict(out_of_order_span=0),
            dict(redelivery_lag=0),
            dict(skew=((1, 2, 3),)),
        ],
    )
    def test_delivery_knob_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)


class TestDegradedPipeline:
    """NaN gaps, dropout and stuck-at faults must never raise."""

    @pytest.fixture
    def degraded_config(self, toy_config):
        return replace(toy_config, allow_missing=True)

    @pytest.mark.parametrize(
        "model",
        [
            FaultModel(missing_rate=0.02, seed=1),
            FaultModel(missing_rate=0.10, seed=2),
            FaultModel(dropout=((3, 200, 900),), seed=3),
            FaultModel(stuck=((5, 100, 700),), seed=4),
            FaultModel(
                missing_rate=0.05,
                duplicate_rate=0.02,
                dropout=((0, 0, 1200),),
                stuck=((7, 300, 600),),
                seed=5,
            ),
        ],
    )
    def test_faulted_stream_never_raises(self, degraded_config, toy_values, model):
        values = model.apply(toy_values[:, :1200])
        stream = StreamingCAD(degraded_config, 12)
        records = stream.push_many(values)
        assert records
        assert all(record.quality is not None for record in records)

    def test_zero_fault_rate_detection_unchanged(self, degraded_config, toy_config, broken_series):
        """At fault rate 0 the degraded pipeline equals the clean one exactly."""
        history, test, _, _ = broken_series
        values = FaultModel(seed=9).apply(test.values)

        clean = CAD(toy_config, 12)
        clean.warm_up(history)
        clean_result = clean.detect(test)

        degraded = CAD(degraded_config, 12)
        degraded.warm_up(history)
        degraded_result = degraded.detect(
            MultivariateTimeSeries(values, allow_missing=True)
        )

        assert len(clean_result.rounds) == len(degraded_result.rounds)
        for a, b in zip(clean_result.rounds, degraded_result.rounds):
            assert a.n_variations == b.n_variations
            assert a.outliers == b.outliers
            assert a.abnormal == b.abnormal
            assert a.deviation == b.deviation
            assert b.quality is not None and not b.quality.degraded

    def test_five_percent_missing_plus_dropout_still_detects(
        self, degraded_config, broken_series
    ):
        """Acceptance scenario: 5% MAR + one dead sensor, end to end."""
        history, test, (start, stop), _ = broken_series
        model = FaultModel(
            missing_rate=0.05,
            dropout=((11, 0, test.length),),  # sensor 11 is not in the break
            seed=21,
        )
        faulted = MultivariateTimeSeries(model.apply(test.values), allow_missing=True)

        stream = StreamingCAD(degraded_config, 12)
        stream.warm_up(history)
        records = stream.push_many(faulted.values)

        assert all(record.quality is not None for record in records)
        assert any(record.quality.degraded for record in records)
        assert any(11 in record.quality.masked_sensors for record in records)

        # The injected correlation break must still raise alarms within its
        # span (records are indexed globally, i.e. including the warm-up).
        lo, hi = start + history.length, stop + history.length
        alarms = [
            record
            for record in records
            if record.abnormal and lo <= record.stop and record.start <= hi
        ]
        assert alarms, "the anomaly must survive 5% missing data and a dead sensor"

    def test_degraded_stream_matches_degraded_batch(self, degraded_config, toy_values):
        """Streaming and batch agree in degraded mode too."""
        model = FaultModel(missing_rate=0.04, seed=13)
        values = model.apply(toy_values[:, :1200])
        series = MultivariateTimeSeries(values, allow_missing=True)

        batch = CAD(degraded_config, 12)
        batch_result = batch.detect(series)
        stream = StreamingCAD(degraded_config, 12)
        records = stream.push_many(values)

        assert len(records) == len(batch_result.rounds)
        for streamed, batched in zip(records, batch_result.rounds):
            assert streamed.n_variations == batched.n_variations
            assert streamed.outliers == batched.outliers
            assert streamed.quality == batched.quality


class TestFlapping:
    def test_periodic_nan_pattern(self):
        from repro.datasets import inject_sensor_flapping

        clean = np.ones((4, 100))
        corrupted = inject_sensor_flapping(clean, 1, 20, 60, period=10, duty=0.3)
        assert not np.isnan(clean).any(), "input must not be modified"
        span = corrupted[1, 20:60]
        # duty=0.3 over period 10 -> first 3 samples of each period are dead
        assert np.isnan(span.reshape(4, 10)[:, :3]).all()
        assert not np.isnan(span.reshape(4, 10)[:, 3:]).any()
        assert not np.isnan(corrupted[1, :20]).any()
        assert not np.isnan(corrupted[1, 60:]).any()
        assert not np.isnan(corrupted[[0, 2, 3], :]).any()

    def test_full_duty_is_a_dropout(self):
        from repro.datasets import inject_sensor_flapping

        corrupted = inject_sensor_flapping(np.ones((3, 50)), 0, 10, 30, period=5, duty=1.0)
        assert np.isnan(corrupted[0, 10:30]).all()

    def test_small_duty_kills_at_least_one_sample(self):
        from repro.datasets import inject_sensor_flapping

        corrupted = inject_sensor_flapping(
            np.ones((3, 50)), 0, 0, 50, period=10, duty=0.01
        )
        assert np.isnan(corrupted[0]).sum() == 5  # one per period

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sensor": 9, "start": 0, "stop": 10, "period": 2},
            {"sensor": 0, "start": 30, "stop": 10, "period": 2},
            {"sensor": 0, "start": 0, "stop": 10, "period": 0},
            {"sensor": 0, "start": 0, "stop": 10, "period": 2, "duty": 0.0},
            {"sensor": 0, "start": 0, "stop": 10, "period": 2, "duty": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        from repro.datasets import inject_sensor_flapping

        with pytest.raises(ValueError):
            inject_sensor_flapping(np.ones((4, 100)), **kwargs)

    def test_fault_model_wiring(self):
        from repro.datasets import inject_sensor_flapping

        model = FaultModel(flapping=((2, 10, 50, 8, 0.5),), seed=0)
        assert not model.is_clean
        direct = inject_sensor_flapping(np.ones((4, 100)), 2, 10, 50, 8, 0.5)
        assert np.array_equal(
            np.isnan(model.apply(np.ones((4, 100)))), np.isnan(direct)
        )

    def test_fault_model_flapping_validation(self):
        with pytest.raises(ValueError):
            FaultModel(flapping=((2, 10, 50, 8),))  # not a 5-tuple
